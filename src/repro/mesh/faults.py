"""Deterministic fault injection for the virtual mesh.

The paper's recipes assume every chip in the slice stays healthy for the
whole run; at production scale chips die, links stall and single
collectives corrupt or time out.  This module makes those failures
*injectable and schedulable* on the virtual mesh so the layers above
(replanning in :mod:`repro.partitioning.degraded`, the resilient request
lifecycle in :mod:`repro.serving.resilient`) can be tested
deterministically on both execution backends.

A :class:`FaultPlan` is a seeded schedule of faults:

* :class:`ChipKill` — from a given step on, every collective whose group
  touches the dead chip raises a typed :class:`ChipFailure` (in SPMD
  execution every chip participates in every collective, so the first
  collective after the kill detects it).
* :class:`CollectiveFault` — one matching collective either times out
  (:class:`CollectiveTimeout`) or has one receiver's replica corrupted.
  Corruption is caught by the checksum verification real systems run on
  collective payloads and surfaces as :class:`CollectiveCorruption`;
  with ``detected=False`` the corruption propagates silently instead —
  the failure mode the typed errors exist to prevent.
* :class:`StragglerFault` — a chip becomes ``slowdown`` times slower;
  every collective it participates in adds simulated delay to
  ``FaultState.sim_delay_s`` rather than raising.  Detection is the
  serving layer's job (deadline projection), mirroring how stragglers
  are only visible as latency in production.

Faults trigger against a step/phase clock advanced by the serving layer
(:meth:`FaultState.advance`); with nobody advancing the clock, ``at_step=0``
faults are live from the first collective, which is what direct mesh-level
tests want.  All scheduling is deterministic: same plan, same program,
same failure point — on either backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.events import FAULT_INJECTED, EventLog

Coord = tuple[int, int, int]


# ---------------------------------------------------------------------------
# Typed failures
# ---------------------------------------------------------------------------

class MeshFault(RuntimeError):
    """Base class for injected mesh failures (never a silent wrong answer)."""


class ChipFailure(MeshFault):
    """A collective touched a dead chip."""

    def __init__(self, chip: Coord, op: str, step: int):
        super().__init__(f"chip {chip} is dead (detected by {op!r} at "
                         f"step {step})")
        self.chip = chip
        self.op = op
        self.step = step


class CollectiveTimeout(MeshFault):
    """A collective on the given axes timed out."""

    def __init__(self, op: str, axes: tuple[str, ...], step: int):
        super().__init__(f"collective {op!r} over axes {axes} timed out "
                         f"at step {step}")
        self.op = op
        self.axes = axes
        self.step = step


class ReplicaCrashed(MeshFault):
    """A whole replica process died (beyond any single chip).

    Scheduled by the cluster layer (see ``RestartSpec`` in
    :mod:`repro.cluster.control_plane`), not by a :class:`FaultPlan`:
    process death is a *host*-level failure, so it is injected by the
    control plane's clock rather than by a collective.  It rides the
    standard :class:`MeshFault` failover path — in-flight groups
    re-prefill elsewhere — and the control plane then restarts the
    replica (cold re-shard or warm rejoin) and journals both halves.
    """

    def __init__(self, replica: str, mode: str, group: int | None = None):
        super().__init__(f"replica {replica!r} process died "
                         f"(scheduled {mode} restart)")
        self.replica = replica
        self.mode = mode
        self.group = group


class CollectiveCorruption(MeshFault):
    """Checksum verification caught a corrupted collective payload."""

    def __init__(self, op: str, axes: tuple[str, ...], chip: Coord,
                 step: int):
        super().__init__(f"collective {op!r} over axes {axes} delivered a "
                         f"corrupt payload to chip {chip} at step {step}")
        self.op = op
        self.axes = axes
        self.chip = chip
        self.step = step


# ---------------------------------------------------------------------------
# Fault schedule
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChipKill:
    """Kill ``chip`` once the clock reaches ``at_step`` (in ``phase``)."""

    chip: Coord
    at_step: int = 0
    phase: str | None = None  # None = any phase


@dataclass(frozen=True)
class CollectiveFault:
    """Fail exactly one matching collective (one-shot).

    ``axes=None`` matches any collective; otherwise the collective's axes
    tuple must equal ``axes``.  ``op=None`` matches any op name.
    ``match_index`` skips that many matching collectives first, so a test
    can target, e.g., the third all-gather of a decode step.
    """

    kind: str = "timeout"  # "timeout" | "corrupt"
    axes: tuple[str, ...] | None = None
    op: str | None = None
    at_step: int = 0
    phase: str | None = None
    match_index: int = 0
    chip: Coord = (0, 0, 0)      # receiver whose replica is corrupted
    detected: bool = True        # checksum catches the corruption
    magnitude: float = 1e3       # corruption noise scale

    def __post_init__(self) -> None:
        if self.kind not in ("timeout", "corrupt"):
            raise ValueError(f"unknown collective fault kind {self.kind!r}")


@dataclass(frozen=True)
class StragglerFault:
    """Make ``chip`` a straggler: ``slowdown``x slower from ``at_step``.

    Each collective the chip participates in (all of them, under SPMD)
    adds ``delay_s_per_op * (slowdown - 1)`` of simulated wall-clock to
    :attr:`FaultState.sim_delay_s`.  ``until_step`` (exclusive, on the
    same clock as ``at_step``) makes the straggle a *window*: the chip
    heals once the clock reaches it.  ``None`` means it never heals.
    """

    chip: Coord
    slowdown: float = 10.0
    delay_s_per_op: float = 1e-3
    at_step: int = 0
    phase: str | None = None
    until_step: int | None = None


Fault = ChipKill | CollectiveFault | StragglerFault


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of mesh faults.

    Construction validates the schedule: duplicate :class:`ChipKill`\\ s
    for the same chip (a chip cannot die twice; which one "wins" would be
    execution-order-dependent), negative ``at_step``\\ s, and inverted
    straggler windows (``until_step <= at_step``) are all rejected with a
    clear error instead of producing undefined runtime behaviour.
    """

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        self._validate()

    def _validate(self) -> None:
        killed: dict[Coord, ChipKill] = {}
        for fault in self.faults:
            if fault.at_step < 0:
                raise ValueError(
                    f"fault {fault!r} has negative at_step "
                    f"{fault.at_step}; the fault clock starts at 0")
            if isinstance(fault, ChipKill):
                earlier = killed.get(fault.chip)
                if earlier is not None:
                    raise ValueError(
                        f"duplicate ChipKill for chip {fault.chip}: "
                        f"{earlier!r} and {fault!r} overlap — a chip "
                        f"can only die once per plan")
                killed[fault.chip] = fault
            elif isinstance(fault, StragglerFault):
                if fault.until_step is not None \
                        and fault.until_step <= fault.at_step:
                    raise ValueError(
                        f"inverted straggler window in {fault!r}: "
                        f"until_step {fault.until_step} must be > "
                        f"at_step {fault.at_step}")
                if fault.slowdown < 1.0:
                    raise ValueError(
                        f"straggler slowdown must be >= 1, got "
                        f"{fault.slowdown} in {fault!r}")

    @property
    def kills(self) -> tuple[ChipKill, ...]:
        return tuple(f for f in self.faults if isinstance(f, ChipKill))

    @property
    def stragglers(self) -> tuple[StragglerFault, ...]:
        return tuple(f for f in self.faults
                     if isinstance(f, StragglerFault))


def _describe(fault: Fault) -> dict:
    data = {"type": type(fault).__name__}
    data.update(vars(fault))
    return data


class FaultState:
    """Mutable per-mesh fault bookkeeping, driven by the collectives.

    The serving layer advances the step/phase clock via :meth:`advance`;
    the collective hooks in :mod:`repro.mesh.ops` call
    :meth:`on_collective` before computing and :meth:`post_collective`
    on the result shards.
    """

    def __init__(self, plan: FaultPlan, event_log: EventLog | None = None):
        self.plan = plan
        self.events = event_log
        self.step = 0
        self.phase: str | None = None
        self.phase_steps: dict[str, int] = {}
        self.op_counter = 0
        self.sim_delay_s = 0.0
        self._fired: set[int] = set()      # indices of announced faults
        self._spent: set[int] = set()      # one-shot faults already fired
        self._match_seen: dict[int, int] = {}
        self._rng = np.random.default_rng(plan.seed)

    # -- clock ------------------------------------------------------------

    def advance(self, phase: str = "step") -> None:
        """Advance the fault clock by one model invocation in ``phase``."""
        self.step += 1
        self.phase = phase
        self.phase_steps[phase] = self.phase_steps.get(phase, 0) + 1

    def _active(self, fault: Fault) -> bool:
        if fault.phase is None:
            clock = self.step
            in_phase = True
        else:
            clock = self.phase_steps.get(fault.phase, 0)
            in_phase = self.phase == fault.phase
        return self._active_at(fault, clock, in_phase)

    @staticmethod
    def _active_at(fault: Fault, clock: int, in_phase: bool) -> bool:
        until = getattr(fault, "until_step", None)
        if until is not None and clock >= until:
            return False  # windowed fault (straggler) has healed
        return in_phase and clock >= fault.at_step

    # -- queries ----------------------------------------------------------

    @property
    def dead_chips(self) -> frozenset[Coord]:
        return frozenset(f.chip for f in self.plan.kills if self._active(f))

    def straggler_chips(self) -> frozenset[Coord]:
        return frozenset(f.chip for f in self.plan.stragglers
                         if self._active(f))

    def quiescent(self) -> bool:
        """True when no scheduled fault could fire or accrue delay now.

        The gate for captured-program replay
        (:mod:`repro.mesh.capture`): replay skips the per-collective
        fault hooks, so it is only allowed while every unspent fault is
        inactive on the current clock — any live kill, timeout,
        corruption or straggler forces the step back onto the eager
        path where the hooks fire exactly as usual.
        """
        for index, fault in enumerate(self.plan.faults):
            if isinstance(fault, CollectiveFault) and index in self._spent:
                continue
            if self._active(fault):
                return False
        return True

    def quiescent_for(self, n: int, phase: str = "decode") -> bool:
        """True when no fault could fire during the next ``n`` advances.

        The gate for *fused* multi-step replay: a fused window advances
        the clock ``n`` times in ``phase`` and then replays without
        consulting the fault hooks, so every unspent fault must stay
        inactive on each of the simulated clocks ``+1 .. +n``.  Exactly
        :meth:`quiescent` evaluated against each future clock, assuming
        all ``n`` advances happen in ``phase``.
        """
        for k in range(1, n + 1):
            for index, fault in enumerate(self.plan.faults):
                if isinstance(fault, CollectiveFault) \
                        and index in self._spent:
                    continue
                if fault.phase is None:
                    clock = self.step + k
                    in_phase = True
                else:
                    clock = self.phase_steps.get(fault.phase, 0)
                    if fault.phase == phase:
                        clock += k
                    in_phase = fault.phase == phase
                if self._active_at(fault, clock, in_phase):
                    return False
        return True

    # -- collective hooks -------------------------------------------------

    def _announce(self, index: int, fault: Fault, op: str) -> None:
        if index in self._fired:
            return
        self._fired.add(index)
        if self.events is not None:
            self.events.record(FAULT_INJECTED, op=op, step=self.step,
                               phase=self.phase, fault=_describe(fault))

    def on_collective(self, op: str, axes: tuple[str, ...]) -> None:
        """Pre-compute hook: raise for dead chips and timed-out collectives,
        accumulate straggler delay."""
        self.op_counter += 1
        for index, fault in enumerate(self.plan.faults):
            if not self._active(fault):
                continue
            if isinstance(fault, ChipKill):
                self._announce(index, fault, op)
                raise ChipFailure(fault.chip, op, self.step)
            if isinstance(fault, StragglerFault):
                self._announce(index, fault, op)
                self.sim_delay_s += fault.delay_s_per_op * \
                    (fault.slowdown - 1.0)
            elif isinstance(fault, CollectiveFault) and \
                    fault.kind == "timeout":
                if self._matches(index, fault, op, axes):
                    self._announce(index, fault, op)
                    raise CollectiveTimeout(op, axes, self.step)

    def post_collective(self, op: str, axes: tuple[str, ...],
                        shards: np.ndarray) -> np.ndarray:
        """Post-compute hook: apply (and detect) payload corruption."""
        for index, fault in enumerate(self.plan.faults):
            if not isinstance(fault, CollectiveFault) or \
                    fault.kind != "corrupt":
                continue
            if not self._active(fault) or \
                    not self._matches(index, fault, op, axes):
                continue
            self._announce(index, fault, op)
            shard = shards[fault.chip]
            noise = fault.magnitude * (1.0 + np.abs(
                self._rng.standard_normal(np.shape(shard))))
            # Assignment (not in-place add): on the loop backend a group's
            # replicas may alias one array, and only this chip's copy is
            # corrupt.
            shards = shards.copy()
            shards[fault.chip] = shard + noise
            if fault.detected:
                raise CollectiveCorruption(op, axes, fault.chip, self.step)
        return shards

    def _matches(self, index: int, fault: CollectiveFault, op: str,
                 axes: tuple[str, ...]) -> bool:
        if index in self._spent:
            return False
        if fault.op is not None and fault.op != op:
            return False
        if fault.axes is not None and tuple(fault.axes) != tuple(axes):
            return False
        seen = self._match_seen.get(index, 0)
        self._match_seen[index] = seen + 1
        if seen < fault.match_index:
            return False
        self._spent.add(index)
        return True

    def take_transfer_fault(self, phase: str = "handoff"
                            ) -> CollectiveFault | None:
        """Consume one live one-shot fault scheduled against ``phase``.

        The KV-handoff transfer is host-mediated — no collective runs,
        so :meth:`on_collective` never sees faults aimed at the
        ``"handoff"`` phase clock.  The transactional handoff calls this
        instead: a matching unspent :class:`CollectiveFault` is spent
        and returned (modeling a lost transfer acknowledgement the
        retry-plus-dedup protocol must absorb), or ``None``.
        """
        for index, fault in enumerate(self.plan.faults):
            if not isinstance(fault, CollectiveFault) or \
                    index in self._spent:
                continue
            if fault.phase != phase or not self._active(fault):
                continue
            self._spent.add(index)
            self._announce(index, fault, op="kv_handoff")
            return fault
        return None

    # -- replanning support ----------------------------------------------

    def remaining_plan(self, origin: Coord,
                       shape: Coord) -> FaultPlan:
        """The plan translated into a healthy sub-slice's coordinates.

        Spent one-shot faults and faults whose chip falls outside the
        sub-slice are dropped; surviving chip coordinates are shifted by
        ``origin``.  Used when replanning installs fault state on the new
        (shrunken) mesh.
        """

        def inside(chip: Coord) -> bool:
            return all(o <= c < o + s
                       for c, o, s in zip(chip, origin, shape))

        def shift(chip: Coord) -> Coord:
            return tuple(c - o for c, o in zip(chip, origin))

        kept: list[Fault] = []
        for index, fault in enumerate(self.plan.faults):
            if index in self._spent:
                continue
            if isinstance(fault, (ChipKill, StragglerFault)):
                if index in self._fired or not inside(fault.chip):
                    continue
                kept.append(replace(fault, chip=shift(fault.chip)))
            elif inside(fault.chip):
                kept.append(replace(fault, chip=shift(fault.chip)))
        return FaultPlan(faults=tuple(kept), seed=self.plan.seed)


# ---------------------------------------------------------------------------
# Mesh integration
# ---------------------------------------------------------------------------

def install_fault_plan(mesh, plan: FaultPlan,
                       event_log: EventLog | None = None) -> FaultState:
    """Attach a fault plan to a mesh; collectives consult it from now on."""
    state = FaultState(plan, event_log)
    mesh.fault_state = state
    return state


def clear_faults(mesh) -> None:
    """Detach any fault state from a mesh."""
    if hasattr(mesh, "fault_state"):
        del mesh.fault_state
