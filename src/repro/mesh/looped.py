"""Looped CollectiveEinsum (Section 3.5, after Wang et al. 2023).

The paper's single biggest low-level optimization: instead of running an
all-gather (or reduce-scatter) *then* a matmul, the collective is unrolled
into K ring steps and each step's chunk is multiplied as soon as it
arrives, overlapping communication with computation.  "The
CollectiveEinsum loops are the overwhelming majority of the inference
latency."

This module implements both fused patterns on the virtual mesh, built from
the same :func:`~repro.collectives.ring.collective_permute` neighbor
primitive as the ring collectives:

* :func:`all_gather_einsum` — computes ``einsum(all_gather(x), w)``
  without ever materializing the gathered ``x``: the contraction
  distributes over chunks, so each step contracts one activation chunk
  against the matching slice of the local weight shard and accumulates.
* :func:`einsum_reduce_scatter` — computes
  ``reduce_scatter(einsum(x, w), axis, dim)`` by producing one *output
  chunk* per step (slicing the weight along the scattered dim) and
  folding it into a circulating ring sum, so the full partial-sum tensor
  never exists.

Both return :class:`~repro.collectives.ring.RingStats`, and tests assert
numerical equality with the unfused compositions plus the expected step
counts.  The peak-memory point is real: the fused forms allocate ``1/K``
of the unfused intermediate ("some of the weight-gathered layouts would
exhaust memory without these optimizations").  The *latency* effect —
communication hidden behind the matmuls — is modeled by the simulator's
``overlap`` flag; a functional numpy mesh has no true concurrency to
measure.

With a tracer installed on the mesh (:mod:`repro.observability`), each
fused call is recorded as a ``fused`` envelope span and every ring hop as
a ``ring_step`` child span with its in-flight buffer size.

Under step capture (:mod:`repro.mesh.capture`), each fused call records
as a *single* envelope instruction whose replay closure re-runs the
already-resolved ring schedule with tracing off — the K per-step slices,
einsums and hops never appear on the tape individually, and when the
operands are step-invariant (the usual weight-gathering case) the whole
envelope constant-folds out of the replayed step.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.ring import RingStats, collective_permute
from repro.mesh import stacked as stacked_kernels
from repro.mesh.ops import _parse_subscripts, einsum_output_layout
from repro.mesh.sharded_tensor import ShardedTensor
from repro.sharding.spec import ShardingError


def _ring_hop(mesh, tracer, shards, axis: str, step: int,
              stats: RingStats) -> np.ndarray:
    """One ring hop: account the in-flight buffer, permute, and (when a
    tracer is installed) record the hop as a ``ring_step`` span."""
    nbytes = shards[0, 0, 0].nbytes
    stats.record(nbytes)
    if tracer is None:
        return collective_permute(mesh, shards, axis, shift=1)
    start = tracer.now()
    out = collective_permute(mesh, shards, axis, shift=1)
    tracer.collective("collective_permute", (axis,), mesh.axis_size(axis),
                      nbytes, kind="ring_step", start_s=start, step=step)
    return out


def _capture_envelope(x: ShardedTensor, w: ShardedTensor,
                      out: ShardedTensor, label: str, run) -> None:
    """Record one fused call as a single replayable envelope instruction.

    ``run(x_tensor, w_tensor)`` must be the resolved eager path with
    tracing disabled — bit-identity of replay is then the statement that
    the ring schedule is deterministic in its operands, which the
    looped-einsum differential tests already assert.
    """
    recorder = getattr(x.mesh, "capture", None)
    if recorder is None or not recorder.recording:
        return
    mesh = x.mesh
    x_spec, x_shape = x.spec, x.global_shape
    w_spec, w_shape = w.spec, w.global_shape

    def replay(xs, ws):
        xt = ShardedTensor(mesh, x_spec, x_shape, xs)
        wt = ShardedTensor(mesh, w_spec, w_shape, ws)
        result, _ = run(xt, wt)
        return result.shards

    recorder.record(replay, (x.shards, w.shards), out.shards, label,
                    collective=True)


def _contraction_letter(subscripts: str) -> str:
    lhs, rhs, out = _parse_subscripts(subscripts)
    contracted = sorted((set(lhs) & set(rhs)) - set(out))
    if len(contracted) != 1:
        raise ShardingError(
            f"looped einsum needs exactly one contraction letter, got "
            f"{contracted} in {subscripts!r}")
    return contracted[0]


def all_gather_einsum(subscripts: str, x: ShardedTensor, w: ShardedTensor,
                      axis: str) -> tuple[ShardedTensor, RingStats]:
    """Fused ``einsum(all_gather(x, (axis,), dim), w)`` over a ring axis.

    ``x``'s contraction dim must be sharded with ``axis`` innermost; ``w``
    must hold the full contraction dim locally (it may be sharded over
    other axes on its remaining dims).  Each of the K ring steps
    contracts the chunk currently resident with the matching row-slice of
    the local weight — on hardware, step s+1's communication overlaps
    step s's matmul.
    """
    tracer = getattr(x.mesh, "tracer", None)
    if tracer is None:
        out, stats = _all_gather_einsum(subscripts, x, w, axis, None)
    else:
        with tracer.region(f"all_gather_einsum:{subscripts}", kind="fused",
                           axis=axis):
            out, stats = _all_gather_einsum(subscripts, x, w, axis, tracer)
    _capture_envelope(
        x, w, out, f"all_gather_einsum:{subscripts}",
        lambda xt, wt: _all_gather_einsum(subscripts, xt, wt, axis, None))
    return out, stats


def _all_gather_einsum(subscripts: str, x: ShardedTensor, w: ShardedTensor,
                       axis: str, tracer
                       ) -> tuple[ShardedTensor, RingStats]:
    mesh = x.mesh
    letter = _contraction_letter(subscripts)
    dim = letter.upper()
    x_axes = x.spec.axes_for(dim)
    if not x_axes or x_axes[-1] != axis:
        raise ShardingError(
            f"x's {dim} must be sharded with {axis!r} innermost, got "
            f"{x.spec}")
    if w.spec.axes_for(dim):
        raise ShardingError(
            f"w must hold the full {dim} locally, got {w.spec}")
    k = mesh.axis_size(axis)
    chunk_len = x.local_shape[x.spec.dim_index(dim)]
    w_dim_idx = w.spec.dim_index(dim)

    # Output layout = that of the unfused composition.
    gathered_spec = x.spec.with_dim_axes(dim, x_axes[:-1])
    gathered_view = ShardedTensor.__new__(ShardedTensor)
    gathered_view.mesh = mesh
    gathered_view.spec = gathered_spec
    gathered_view.global_shape = x.global_shape
    out_spec, out_shape = einsum_output_layout(subscripts, gathered_view,
                                               w)

    stats = RingStats()
    if x.is_stacked and w.is_stacked:
        # Fused fast path: every ring step is one whole-mesh slice +
        # batched einsum; the ring hop is one roll of the device axis.
        lhs, rhs, out_letters = _parse_subscripts(subscripts)
        rank = mesh.rank_grid((axis,))
        outer = mesh.rank_grid(x_axes[:-1])
        accum_dense = None
        flight = x.shards
        for step in range(k):
            origin = (rank - step) % k
            lo = (outer * k + origin) * chunk_len
            w_slice = stacked_kernels.take_local_slices(
                mesh, w.shards, w_dim_idx, lo, chunk_len)
            partial = stacked_kernels.batched_einsum(
                mesh, lhs, rhs, out_letters, flight, w_slice)
            accum_dense = (partial if accum_dense is None
                           else accum_dense + partial)
            if step < k - 1:
                flight = _ring_hop(mesh, tracer, flight, axis, step, stats)
        return ShardedTensor(mesh, out_spec, out_shape, accum_dense), stats

    accum = mesh.empty_shards()
    in_flight = {c: x.shards[c] for c in mesh.devices()}
    for step in range(k):
        for coord in mesh.devices():
            rank = mesh.coords_on(coord, (axis,))[0]
            origin = (rank - step) % k  # the chunk travelled `step` hops
            outer = mesh.rank_in_group(coord, x_axes[:-1])
            lo = (outer * k + origin) * chunk_len
            w_slice = np.take(w.shards[coord],
                              np.arange(lo, lo + chunk_len),
                              axis=w_dim_idx)
            partial = np.einsum(subscripts, in_flight[coord], w_slice)
            accum[coord] = (partial if accum[coord] is None
                            else accum[coord] + partial)
        if step < k - 1:
            buffers = mesh.empty_shards()
            for coord in mesh.devices():
                buffers[coord] = in_flight[coord]
            shifted = _ring_hop(mesh, tracer, buffers, axis, step, stats)
            in_flight = {c: shifted[c] for c in mesh.devices()}

    out = ShardedTensor(mesh, out_spec, out_shape, accum)
    return out, stats


def einsum_reduce_scatter(subscripts: str, x: ShardedTensor,
                          w: ShardedTensor, axis: str, scatter_dim: str
                          ) -> tuple[ShardedTensor, RingStats]:
    """Fused ``reduce_scatter(einsum(x, w), (axis,), scatter_dim)``.

    The contraction dim is sharded over ``axis`` on both operands, so the
    unfused einsum would produce a partial sum over ``axis``.  Instead,
    each ring step computes only the output chunk destined for a
    particular rank — by slicing whichever operand carries
    ``scatter_dim`` — and adds it to the circulating running sum.  The
    per-device intermediate is 1/K of the unfused partial tensor.
    """
    tracer = getattr(x.mesh, "tracer", None)
    if tracer is None:
        out, stats = _einsum_reduce_scatter(subscripts, x, w, axis,
                                            scatter_dim, None)
    else:
        with tracer.region(f"einsum_reduce_scatter:{subscripts}",
                           kind="fused", axis=axis,
                           scatter_dim=scatter_dim):
            out, stats = _einsum_reduce_scatter(subscripts, x, w, axis,
                                                scatter_dim, tracer)
    _capture_envelope(
        x, w, out, f"einsum_reduce_scatter:{subscripts}",
        lambda xt, wt: _einsum_reduce_scatter(subscripts, xt, wt, axis,
                                              scatter_dim, None))
    return out, stats


def _einsum_reduce_scatter(subscripts: str, x: ShardedTensor,
                           w: ShardedTensor, axis: str, scatter_dim: str,
                           tracer) -> tuple[ShardedTensor, RingStats]:
    mesh = x.mesh
    lhs, rhs, out_letters = _parse_subscripts(subscripts)
    letter = _contraction_letter(subscripts)
    dim = letter.upper()
    for t, name in ((x, "x"), (w, "w")):
        if axis not in t.spec.axes_for(dim):
            raise ShardingError(
                f"{name}'s {dim} must be sharded over {axis!r}, got "
                f"{t.spec}")
    scatter_letter = scatter_dim.lower()
    if scatter_letter not in out_letters:
        raise ShardingError(
            f"scatter dim {scatter_dim!r} is not an output dim of "
            f"{subscripts!r}")
    owner, owner_letters = ((x, lhs) if scatter_letter in lhs else (w, rhs))
    other = w if owner is x else x
    owner_dim_idx = owner_letters.index(scatter_letter)

    out_spec, out_shape = einsum_output_layout(subscripts, x, w)
    if axis not in out_spec.partial_sum:
        raise ShardingError(
            f"contraction does not produce a partial sum over {axis!r}")
    final_partial = tuple(a for a in out_spec.partial_sum if a != axis)
    final_spec = out_spec.with_partial_sum(final_partial).with_dim_axes(
        scatter_dim, out_spec.axes_for(scatter_dim) + (axis,))

    k = mesh.axis_size(axis)
    local_extent = owner.local_shape[owner_dim_idx]
    if local_extent % k:
        raise ShardingError(
            f"{scatter_dim} local extent {local_extent} not divisible by "
            f"the ring size {k}")
    chunk = local_extent // k
    stats = RingStats()

    if x.is_stacked and w.is_stacked:
        # Fused fast path: each step slices the scatter-dim owner across
        # the whole mesh at once and folds one batched einsum into the
        # circulating ring sum.
        rank = mesh.rank_grid((axis,))

        def out_chunk_all(chunk_rank: np.ndarray) -> np.ndarray:
            sliced = stacked_kernels.take_local_slices(
                mesh, owner.shards, owner_dim_idx, chunk_rank * chunk,
                chunk)
            if owner is x:
                return stacked_kernels.batched_einsum(
                    mesh, lhs, rhs, out_letters, sliced, other.shards)
            return stacked_kernels.batched_einsum(
                mesh, lhs, rhs, out_letters, other.shards, sliced)

        carry_dense = out_chunk_all((rank - 1) % k)
        for step in range(k - 1):
            shifted = _ring_hop(mesh, tracer, carry_dense, axis, step,
                                stats)
            carry_dense = shifted + out_chunk_all((rank - step + k - 2) % k)
        return (ShardedTensor(mesh, final_spec, out_shape, carry_dense),
                stats)

    def out_chunk(coord, chunk_rank):
        sliced = np.take(owner.shards[coord],
                         np.arange(chunk_rank * chunk,
                                   (chunk_rank + 1) * chunk),
                         axis=owner_dim_idx)
        if owner is x:
            return np.einsum(subscripts, sliced, other.shards[coord])
        return np.einsum(subscripts, other.shards[coord], sliced)

    # Same accumulate-and-forward schedule as the ring reduce-scatter.
    carry = mesh.map_devices(
        lambda c: out_chunk(c, (mesh.coords_on(c, (axis,))[0] - 1) % k))
    for step in range(k - 1):
        shifted = _ring_hop(mesh, tracer, carry, axis, step, stats)
        carry = mesh.empty_shards()
        for coord in mesh.devices():
            rank = mesh.coords_on(coord, (axis,))[0]
            chunk_rank = (rank - step + k - 2) % k
            carry[coord] = shifted[coord] + out_chunk(coord, chunk_rank)

    out = ShardedTensor(mesh, final_spec, out_shape, carry)
    return out, stats
