"""Vectorized kernels for the stacked-shard mesh backend.

A *stacked* :class:`~repro.mesh.sharded_tensor.ShardedTensor` keeps all of
its per-device shards in one dense numpy array of shape ``mesh.shape +
local_shape`` — the three device axes leading.  Indexing with a device
coordinate still yields that device's shard (as a view), so every
loop-backend code path remains valid on stacked tensors; the kernels here
additionally turn each collective into a single reshape/transpose/reduce
over the device axes instead of a Python loop over communication groups,
and sharded einsums into one batched ``np.einsum`` over a flattened device
axis.

Bit-exactness contract
----------------------
The stacked backend is required to produce *bit-identical* shards to the
loop backend (the differential suite in ``tests/unit/test_mesh_backends.py``
asserts exact equality).  Two details make that hold:

* Group reductions accumulate **sequentially, left to right in group
  order** (a short Python loop over the group axis — at most the mesh
  axis-size product of additions, each itself a whole-mesh vectorized
  add), rather than ``np.sum``, whose pairwise summation could reassociate
  floating-point adds.
* Batched ``np.einsum`` with a leading batch subscript produces the same
  bits as per-slice einsum, because the contraction loop per output
  element is unchanged; the test suite locks this property in.

Axis-ordering convention matches :mod:`repro.mesh.ops`: a communication
group over ``axes`` is ordered row-major with the *last* listed axis
innermost, which is exactly the order produced by transposing the device
axes into ``axes`` order and flattening.

Observability: these kernels carry no instrumentation of their own — the
span hooks live at the backend-independent entry points in
:mod:`repro.mesh.ops` and :mod:`repro.mesh.looped`, so a tracer sees the
same event stream whichever backend executes it.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.hardware.topology import AXIS_NAMES


def is_stacked(shards: np.ndarray) -> bool:
    """True if ``shards`` is a dense stacked array (not an object array)."""
    return isinstance(shards, np.ndarray) and shards.dtype != object


def stack_shards(mesh, shards: np.ndarray) -> np.ndarray:
    """Convert an object array of per-device shards to the dense form."""
    if is_stacked(shards):
        return shards
    first = shards[0, 0, 0]
    out = np.empty(mesh.shape + first.shape, dtype=first.dtype)
    for coord in mesh.devices():
        out[coord] = shards[coord]
    return out


def unstack_shards(mesh, dense: np.ndarray) -> np.ndarray:
    """Convert a dense stacked array to an object array of per-device
    shards.

    A contiguous slice of ``dense`` is kept as a view; only
    non-contiguous slices (e.g. of a transposed stacked array) are
    copied, so the common unstack of a freshly materialized stacked
    tensor allocates nothing.
    """
    out = mesh.empty_shards()
    for coord in mesh.devices():
        shard = dense[coord]
        if not shard.flags["C_CONTIGUOUS"]:
            shard = np.ascontiguousarray(shard)
        out[coord] = shard
    return out


# ---------------------------------------------------------------------------
# Device-axis rearrangement
# ---------------------------------------------------------------------------

@lru_cache(maxsize=None)
def _axes_meta(mesh_shape: tuple[int, int, int], part: tuple[int, ...]):
    """Precomputed device-axis bookkeeping for a (mesh, axes) pair.

    Returns ``(rest, part, inverse, rest_shape, part_shape, k)`` where
    ``inverse`` undoes the ``rest + part`` device-axis permutation.  Every
    collective needs this tiny computation; memoizing it (a handful of
    distinct keys per model) keeps the per-call Python work to two dict
    lookups.
    """
    rest = tuple(i for i in range(3) if i not in part)
    order = rest + part
    inverse = tuple(order.index(d) for d in range(3))
    rest_shape = tuple(mesh_shape[i] for i in rest)
    part_shape = tuple(mesh_shape[i] for i in part)
    k = 1
    for size in part_shape:
        k *= size
    return rest, part, inverse, rest_shape, part_shape, k


def _group_view(mesh, shards: np.ndarray, axes: Sequence[str]):
    """Rearrange ``[d0, d1, d2, *local]`` to ``[rest..., K, *local]``.

    The merged ``K`` axis enumerates each communication group row-major in
    ``axes`` order (matching ``mesh.groups``/``rank_in_group``).  Returns
    the rearranged array plus the metadata needed by :func:`_ungroup`.
    """
    meta = _axes_meta(mesh.shape, tuple(mesh.axis_indices(axes)))
    rest, part, _, rest_shape, _, k = meta
    moved = shards.transpose(rest + part + tuple(range(3, shards.ndim)))
    grouped = moved.reshape(rest_shape + (k,) + shards.shape[3:])
    return grouped, meta


def _ungroup(arr: np.ndarray, meta, new_local: Sequence[int],
             materialize: bool = True) -> np.ndarray:
    """Inverse of :func:`_group_view` for a (possibly new) local shape.

    ``np.einsum``'s reduction order — and therefore its low bits — depends
    on operand strides, so stacked results must present each device's
    local block with the same (C-contiguous) layout the loop backend
    produces.  ``materialize=True`` copies per device to guarantee that.
    Replicating collectives instead copy once per *group* before
    broadcasting and pass ``materialize=False``: the device-axis transpose
    below only permutes (possibly zero-stride) device axes, leaving each
    local block contiguous, so replicas stay O(result-per-group) views.
    """
    _, _, inverse, rest_shape, part_shape, _ = meta
    arr = arr.reshape(rest_shape + part_shape + tuple(new_local))
    out = arr.transpose(inverse + tuple(range(3, arr.ndim)))
    return np.ascontiguousarray(out) if materialize else out


def _group_sum(grouped: np.ndarray, group_axis: int) -> np.ndarray:
    """Left-to-right sequential sum over one axis (loop-order bit-exact)."""
    k = grouped.shape[group_axis]
    index = [slice(None)] * grouped.ndim
    index[group_axis] = 0
    total = grouped[tuple(index)]
    for rank in range(1, k):
        index[group_axis] = rank
        total = total + grouped[tuple(index)]
    return total


def _replicate(arr: np.ndarray, meta) -> np.ndarray:
    """Broadcast a per-group result ``[rest..., *local]`` over the group."""
    _, _, _, rest_shape, _, k = meta
    local = arr.shape[len(rest_shape):]
    expanded = arr.reshape(rest_shape + (1,) + local)
    return np.broadcast_to(expanded, rest_shape + (k,) + local)


# ---------------------------------------------------------------------------
# Collectives
# ---------------------------------------------------------------------------

def _grouped_view_meta(shards: np.ndarray, meta):
    """:func:`_group_view` against already-resolved ``meta``."""
    rest, part, _, rest_shape, _, k = meta
    moved = shards.transpose(rest + part + tuple(range(3, shards.ndim)))
    return moved.reshape(rest_shape + (k,) + shards.shape[3:])


def _all_gather_meta(shards: np.ndarray, dim_idx: int, meta) -> np.ndarray:
    grouped = _grouped_view_meta(shards, meta)
    nrest = len(meta[0])
    k = meta[5]
    local = shards.shape[3:]
    # Move the group axis to sit immediately before the gathered dim, then
    # merge them: concatenation in group order == reshape of (K, l_d).
    merged = np.moveaxis(grouped, nrest, nrest + dim_idx)
    new_local = (local[:dim_idx] + (k * local[dim_idx],)
                 + local[dim_idx + 1:])
    # One copy per group (not per replica): the broadcast replicas then
    # share contiguous local blocks, matching the loop backend's layout.
    gathered = np.ascontiguousarray(merged.reshape(meta[3] + new_local))
    return _ungroup(_replicate(gathered, meta), meta, new_local,
                    materialize=False)


def all_gather(mesh, shards: np.ndarray, axes: Sequence[str],
               dim_idx: int) -> np.ndarray:
    """Concatenate each group's shards along ``dim_idx``, replicated."""
    meta = _axes_meta(mesh.shape, tuple(mesh.axis_indices(axes)))
    return _all_gather_meta(shards, dim_idx, meta)


def _reduce_scatter_meta(shards: np.ndarray, dim_idx: int,
                         meta) -> np.ndarray:
    grouped = _grouped_view_meta(shards, meta)
    nrest = len(meta[0])
    k = meta[5]
    local = shards.shape[3:]
    total = _group_sum(grouped, nrest)
    chunk = local[dim_idx] // k
    split = total.reshape(meta[3] + local[:dim_idx] + (k, chunk)
                          + local[dim_idx + 1:])
    out = np.moveaxis(split, nrest + dim_idx, nrest)
    new_local = local[:dim_idx] + (chunk,) + local[dim_idx + 1:]
    return _ungroup(out, meta, new_local)


def reduce_scatter(mesh, shards: np.ndarray, axes: Sequence[str],
                   dim_idx: int) -> np.ndarray:
    """Sum each group sequentially, scatter chunks of ``dim_idx`` by rank."""
    meta = _axes_meta(mesh.shape, tuple(mesh.axis_indices(axes)))
    return _reduce_scatter_meta(shards, dim_idx, meta)


def _all_reduce_meta(shards: np.ndarray, meta) -> np.ndarray:
    grouped = _grouped_view_meta(shards, meta)
    total = np.ascontiguousarray(_group_sum(grouped, len(meta[0])))
    return _ungroup(_replicate(total, meta), meta, shards.shape[3:],
                    materialize=False)


def all_reduce(mesh, shards: np.ndarray, axes: Sequence[str]) -> np.ndarray:
    """Sum each group sequentially, replicating the total."""
    meta = _axes_meta(mesh.shape, tuple(mesh.axis_indices(axes)))
    return _all_reduce_meta(shards, meta)


def prebind_collective(mesh, kind: str, axes: Sequence[str],
                       dim_idx: int | None = None):
    """A single-argument collective closure with its metadata resolved.

    The capture-replay optimizer swaps a recorded collective's generic
    closure (which re-resolves ``_axes_meta`` per call) for one of
    these: same kernel, same meta, precomputed once — so the per-replay
    Python work drops to the kernel body itself.  Returns ``None`` for
    kinds without a prebound form (the optimizer then leaves the
    instruction untouched).
    """
    meta = _axes_meta(mesh.shape, tuple(mesh.axis_indices(axes)))
    if kind == "all_gather":
        return lambda s: _all_gather_meta(s, dim_idx, meta)
    if kind == "reduce_scatter":
        return lambda s: _reduce_scatter_meta(s, dim_idx, meta)
    if kind == "all_reduce":
        return lambda s: _all_reduce_meta(s, meta)
    return None


# One gather's worth of precomputed indices; above this the index table
# (and the materialized replica copies it implies) stops being worth the
# saved calls — prefill-sized tensors keep the meta-kernel form.
_INDEXED_COLLECTIVE_LIMIT = 1 << 18


def prebind_collective_indexed(mesh, kind: str, axes: Sequence[str],
                               dim_idx: int | None, in_shape,
                               dtype=np.float64):
    """A collective closure with its data movement traced to one gather.

    The movement portions of a collective (grouping, scattering,
    replication) are pure permutations-with-duplication of the input
    elements, so running the existing kernels once over an ``arange``
    probe yields, at each output position, the flat *index* of the input
    element that lands there — after which replay is a single
    ``np.take`` per movement stage.  The reduction portion keeps the
    exact left-to-right sequential adds of :func:`_group_sum` (on rows
    holding identical values), so every output bit matches the meta
    kernels.  Returns ``None`` when the shape is too large for index
    tables to pay off (the caller falls back to
    :func:`prebind_collective`).
    """
    size = int(np.prod(in_shape))
    if size > _INDEXED_COLLECTIVE_LIMIT:
        return None
    meta = _axes_meta(mesh.shape, tuple(mesh.axis_indices(axes)))
    nrest = len(meta[0])
    k = meta[5]
    if k < 2 and kind != "all_gather":
        return None  # nothing to reduce; the generic prebind handles it
    probe = np.arange(size).reshape(in_shape)
    local = tuple(in_shape[3:])

    dtype = np.dtype(dtype)

    if kind == "all_gather":
        idx = np.ascontiguousarray(_all_gather_meta(probe, dim_idx, meta))
        obuf = np.empty(idx.shape, dtype)

        def gather(a):
            a.reshape(-1).take(idx, out=obuf)
            return obuf
        return gather

    gidx = np.ascontiguousarray(_grouped_view_meta(probe, meta))
    rows = tuple((slice(None),) * nrest + (rank,) for rank in range(k))
    summed_shape = meta[3] + local
    probe2 = np.arange(int(np.prod(summed_shape))).reshape(summed_shape)

    if kind == "all_reduce":
        ridx = np.ascontiguousarray(
            _ungroup(_replicate(probe2, meta), meta, local,
                     materialize=False))
    elif kind == "reduce_scatter":
        chunk = local[dim_idx] // k
        split = probe2.reshape(meta[3] + local[:dim_idx] + (k, chunk)
                               + local[dim_idx + 1:])
        moved = np.moveaxis(split, nrest + dim_idx, nrest)
        new_local = local[:dim_idx] + (chunk,) + local[dim_idx + 1:]
        ridx = np.ascontiguousarray(_ungroup(moved, meta, new_local))
    else:
        return None

    # Combined table: output position ``o`` sums ``in_flat[comb[r, o]]``
    # over ranks ``r`` in ascending order — the same operands in the same
    # order as the sequential row adds of ``_group_sum`` (an outer-axis
    # ``add.reduce`` accumulates in index order; pairwise blocking only
    # applies to innermost-axis reductions).  One gather, one reduction.
    rflat = ridx.reshape(-1)
    comb = np.stack([
        np.ascontiguousarray(gidx[row]).reshape(-1)[rflat] for row in rows])
    gbuf = np.empty(comb.shape, dtype)
    obuf = np.empty(ridx.shape, dtype)
    oflat = obuf.reshape(-1)

    def reduce_move(a):
        a.reshape(-1).take(comb, out=gbuf)
        np.add.reduce(gbuf, axis=0, out=oflat)
        return obuf
    return reduce_move


def all_to_all(mesh, shards: np.ndarray, axes: Sequence[str],
               src_idx: int, dst_idx: int) -> np.ndarray:
    """Gather into ``src_idx``, scatter out of ``dst_idx`` (per group)."""
    grouped, meta = _group_view(mesh, shards, axes)
    nrest = len(meta[0])
    k = meta[5]
    local = shards.shape[3:]
    merged = np.moveaxis(grouped, nrest, nrest + src_idx)
    mid_local = (local[:src_idx] + (k * local[src_idx],)
                 + local[src_idx + 1:])
    assembled = merged.reshape(meta[3] + mid_local)
    chunk = mid_local[dst_idx] // k
    split = assembled.reshape(meta[3] + mid_local[:dst_idx] + (k, chunk)
                              + mid_local[dst_idx + 1:])
    out = np.moveaxis(split, nrest + dst_idx, nrest)
    new_local = mid_local[:dst_idx] + (chunk,) + mid_local[dst_idx + 1:]
    return _ungroup(out, meta, new_local)


def split(mesh, shards: np.ndarray, axes: Sequence[str],
          dim_idx: int) -> np.ndarray:
    """Each device keeps its own rank's chunk of its replica (no comm)."""
    grouped, meta = _group_view(mesh, shards, axes)
    nrest = len(meta[0])
    k = meta[5]
    local = shards.shape[3:]
    chunk = local[dim_idx] // k
    arr = grouped.reshape(meta[3] + (k,) + local[:dim_idx] + (k, chunk)
                          + local[dim_idx + 1:])
    # Select the diagonal between the device rank axis and the chunk axis.
    moved = np.moveaxis(arr, (nrest, nrest + 1 + dim_idx), (0, 1))
    ranks = np.arange(k)
    diag = moved[ranks, ranks]
    out = np.moveaxis(diag, 0, nrest)
    new_local = local[:dim_idx] + (chunk,) + local[dim_idx + 1:]
    return _ungroup(out, meta, new_local)


def collective_permute(mesh, shards: np.ndarray, axis: str,
                       shift: int) -> np.ndarray:
    """Ring-shift buffers along a torus axis: one ``np.roll``."""
    axis_idx = AXIS_NAMES.index(axis)
    return np.roll(shards, shift, axis=axis_idx)


# ---------------------------------------------------------------------------
# Batched einsum
# ---------------------------------------------------------------------------

def batched_einsum(mesh, lhs: str, rhs: str, out_subs: str,
                   a_shards: np.ndarray, b_shards: np.ndarray,
                   out: np.ndarray | None = None) -> np.ndarray:
    """One ``np.einsum`` over all devices (device grid as batch axes).

    The three device axes ride along as an ellipsis, which broadcasts —
    so replicated operands held as zero-stride views cost no copies.  The
    contraction loop per output element is identical to the per-device
    einsum, keeping the result bit-identical to the loop backend; the
    optional ``out`` buffer (the capture-replay arena) does not change
    the contraction order, so writing into it preserves the bits.
    """
    subscripts = _ellipsis_subscripts(lhs, rhs, out_subs)
    if out is None:
        return np.einsum(subscripts, a_shards, b_shards)
    return np.einsum(subscripts, a_shards, b_shards, out=out)


@lru_cache(maxsize=None)
def _ellipsis_subscripts(lhs: str, rhs: str, out: str) -> str:
    return f"...{lhs},...{rhs}->...{out}"


def take_local_slices(mesh, shards: np.ndarray, dim_idx: int,
                      start_grid: np.ndarray, length: int) -> np.ndarray:
    """Per-device slices ``[start:start+length]`` of one local dim.

    ``start_grid`` is an integer array over the device grid giving each
    device's slice offset — the vectorized form of the per-device
    ``np.take`` in the looped CollectiveEinsum.
    """
    local_ndim = shards.ndim - 3
    offsets = np.arange(length).reshape(
        tuple(length if i == dim_idx else 1 for i in range(local_ndim)))
    index = start_grid.reshape(mesh.shape + (1,) * local_ndim) + offsets
    return np.take_along_axis(shards, index, axis=3 + dim_idx)


# ---------------------------------------------------------------------------
# Global <-> stacked conversion
# ---------------------------------------------------------------------------

def from_global(mesh, array: np.ndarray, spec,
                local: Sequence[int]) -> np.ndarray:
    """Shard a global array into the dense stacked representation.

    Splits every sharded dim into its (row-major) axis factors, transposes
    the factors into device-axis position, and broadcasts over any mesh
    axes the spec does not use (replication).
    """
    shape: list[int] = []
    axis_pos: dict[str, int] = {}
    dim_pos: list[int] = []
    for axes, loc in zip(spec.axes, local):
        for axis in axes:
            axis_pos[axis] = len(shape)
            shape.append(mesh.axis_size(axis))
        dim_pos.append(len(shape))
        shape.append(loc)
    arr = array.reshape(shape)
    used = [a for a in AXIS_NAMES if a in axis_pos]
    arr = arr.transpose([axis_pos[a] for a in used] + dim_pos)
    for i, axis in enumerate(AXIS_NAMES):
        if axis not in axis_pos:
            arr = np.expand_dims(arr, i)
    arr = np.broadcast_to(arr, mesh.shape + tuple(local))
    return np.ascontiguousarray(arr)


def to_global(mesh, spec, global_shape: Sequence[int], shards: np.ndarray,
              check_replication: bool = True) -> np.ndarray:
    """Reassemble the global array from a dense stacked representation.

    Mirrors the loop backend exactly: replicas are checked for equality
    against the first-seen (all-zero replica coordinate) copy, partial
    sums accumulate sequentially in row-major device order, and sharded
    dims are reassembled by inverting :func:`from_global`.
    """
    from repro.sharding.spec import ShardingError

    shard_axes = {a for group in spec.axes for a in group}
    psum_axes = set(spec.partial_sum)
    rep_idx = [i for i, a in enumerate(AXIS_NAMES)
               if a not in shard_axes and a not in psum_axes]

    if check_replication and any(mesh.shape[i] > 1 for i in rep_idx):
        ref_index = tuple(0 if i in rep_idx else slice(None)
                          for i in range(3))
        reference = shards[ref_index]
        for i in rep_idx:
            reference = np.expand_dims(reference, i)
        equal = shards == reference
        if shards.dtype.kind in "fc":
            equal = equal | (np.isnan(shards) & np.isnan(reference))
        if not equal.all():
            raise ShardingError(
                f"replicas disagree for spec {spec} on mesh {mesh.shape}")

    # Keep the first-seen replica, then sum partial axes sequentially in
    # row-major device order: flattening the partial axes (ascending
    # device-axis order) reproduces the loop backend's addition order, so
    # the reassembly is bit-identical.
    first = tuple(0 if i in rep_idx else slice(None) for i in range(3))
    arr = shards[first]
    remaining = [a for i, a in enumerate(AXIS_NAMES) if i not in rep_idx]
    psum_positions = [remaining.index(a) for a in AXIS_NAMES
                      if a in psum_axes]
    if psum_positions:
        arr = np.moveaxis(arr, psum_positions, range(len(psum_positions)))
        k = 1
        for p in psum_positions:
            k *= mesh.axis_size(remaining[p])
        arr = arr.reshape((k,) + arr.shape[len(psum_positions):])
        arr = _group_sum(arr, 0)
        remaining = [a for a in remaining if a not in psum_axes]

    # remaining now lists the sharding axes in device-axis order; move each
    # factor next to its dim and merge.
    pos = {a: i for i, a in enumerate(remaining)}
    nshard = len(remaining)
    perm: list[int] = []
    for d, axes in enumerate(spec.axes):
        perm.extend(pos[a] for a in axes)
        perm.append(nshard + d)
    return np.array(arr.transpose(perm).reshape(tuple(global_shape)))
