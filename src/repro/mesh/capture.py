"""Capture-and-replay programs: a trace-once compiler for the serving path.

The decode phase is latency-critical and runs the *same* partitioned op
sequence every step (Sections 2, 3.5): the layouts, communication groups
and einsum shapes are all fixed for the lifetime of a (mesh, plan, batch)
deployment, yet the eager path re-derives every one of them per step —
``ShardSpec`` resolution, layout inference, group construction, weight
re-gathers.  At decode batch sizes that Python-side bookkeeping dominates
the (tiny) numpy compute.

This module removes it by *tracing one eager step*.  While a
:class:`StepRecorder` is installed on a mesh (duck-typed ``mesh.capture``,
like ``tracer``/``fault_state``/``comm_log``), every collective and
sharded einsum in :mod:`repro.mesh.ops`, every shard-level helper in
:mod:`repro.layouts`, and the KV-cache append/view operations record a
*replay closure* over their already-resolved kernel parameters, alongside
the identity of their input and output shard arrays.  The recorder links
those records into a dataflow tape; :meth:`StepRecorder.finalize` turns
the tape into a :class:`CapturedProgram`:

* **Constant folding** — any instruction whose inputs are all
  step-invariant (weights, or values derived only from weights) is
  dropped, and its *captured output* becomes a program constant.  This
  hoists the per-step weight all-gathers of the weight-gathered layouts
  (Section 3.2.3) out of the step entirely — the dominant collective
  count at decode — and is trivially bit-exact, because the constant is
  the very array the eager step produced.
* **Buffer arena** — instructions whose kernels accept an output buffer
  (batched einsums, residual adds) get a preallocated arena buffer
  matching their captured output, eliminating per-step allocation churn.
  Buffers are reused *across* steps, never within one (the tape is SSA),
  and the program's final output stays freshly allocated so callers may
  hold logits across steps.
* **Stable input slots** — the step-varying inputs (token ids, KV-cache
  pages, the decode position) enter through a :class:`ReplayContext`
  bound per replay; cache instructions index ``ctx.caches``, so a
  program survives cache hand-off as long as the cache *layout* matches.

``program.replay(tokens, caches)`` then executes the flat closure list —
no layout selection, no ``ShardSpec`` work, no group construction, no
``ShardedTensor`` validation — and is required to be **bit-identical** to
the eager step (the differential suite in
``tests/unit/test_step_capture.py`` asserts exact equality on both mesh
backends, across multiple steps and mesh shapes).

Capture v2 extends the single decode program to a cache covering the
serving hot path end-to-end:

* **Prefill programs** — :func:`capture_prefill_chunk` traces one
  ``model.forward`` chunk; :meth:`StepCompiler.prefill_chunk` keys the
  resulting program per chunk length, so chunked prefill replays every
  chunk after the first of each length bucket through the arena.
* **Fused multi-step decode** — :func:`capture_fused_decode` runs N
  decode steps inside one capture, recording the greedy sampling between
  steps as tape instructions; the resulting program appends to the KV
  cache in-arena N times and amortizes per-step Python dispatch over the
  fusion window.  Fused (and prefill) programs additionally run the
  tape optimizer in :mod:`repro.mesh.replay_opt` — projection-einsum
  fusion, RoPE table CSE, prebound collectives — all bit-exact by
  construction and asserted differentially.  :meth:`StepCompiler.
  decode_window` falls back to single-step execution at window
  boundaries (cache nearly full) and whenever the mesh's fault state is
  not quiescent for the whole window.
* **Shape-bucketed program cache** — :class:`StepCompiler` keeps an LRU
  ``OrderedDict`` of programs keyed by (kind, window, backend, mesh
  shape, plan, token shape/dtype, cache layouts, dead-chip set), so a
  continuous-batching workload whose batch shrinks as sequences finish
  hits warm programs (the compiler pads the token batch up to the cache
  capacity when ``batch_bucket`` rounds it there) instead of thrashing
  re-capture.  Hits, misses, evictions and per-reason invalidations are
  counted and surfaced through the observability metrics tables.

Interplay with the rest of the stack:

* **Faults** — replay consults nothing mid-step, so it only runs when
  the mesh's fault state is :meth:`~repro.mesh.faults.FaultState.
  quiescent` (for fused windows: quiescent for every step in the
  window, via :meth:`~repro.mesh.faults.FaultState.quiescent_for`);
  :class:`StepCompiler` falls back to eager execution for any step on
  which a scheduled fault is live, so kills, timeouts, corruption and
  straggler delay fire exactly as they would eagerly.
* **Observability** — a replayed step emits one condensed
  ``kind="replay"`` span carrying the instruction/collective counts
  (inside the usual ``decode`` phase envelope), so Tracer-based tooling
  keeps working without paying per-op span costs.
* **Invalidation** — a program is only replayed while its signature
  matches: same mesh *object*, same backend, same plan, same token batch
  shape, same cache layouts, same dead-chip set.  Degraded replanning
  and cluster failover swap the mesh and models, which invalidates
  automatically; :class:`StepCompiler` then re-captures on the new
  deployment.  :meth:`CapturedProgram.mismatch` names the reason, which
  the compiler tallies per reason.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np


class CaptureError(RuntimeError):
    """A step could not be captured into a replayable program."""


class ReplayContext:
    """The step-varying inputs of one replayed step (the stable slots)."""

    __slots__ = ("tokens", "caches")

    def __init__(self, tokens: np.ndarray | None, caches: Sequence):
        self.tokens = tokens
        self.caches = caches


class _Instr:
    """One replayable instruction: a closure over resolved kernel params."""

    __slots__ = ("fn", "inputs", "out", "label", "collective", "arena",
                 "buffer", "meta")

    def __init__(self, fn: Callable, inputs: tuple[int, ...],
                 out: int | None, label: str, collective: bool,
                 arena: bool, meta: tuple | None = None):
        self.fn = fn
        self.inputs = inputs
        self.out = out
        self.label = label
        self.collective = collective
        self.arena = arena
        self.buffer: np.ndarray | None = None
        self.meta = meta


@dataclass(frozen=True)
class ProgramSignature:
    """What must stay unchanged for a program to remain valid.

    The mesh itself is compared by *object identity* (stored on the
    program, not here): replanning and failover build a new
    ``VirtualMesh``, so identity is the cheapest exact invalidation
    test.  ``dead_chips`` additionally pins the healthy-chip set at
    capture time, so a mesh that degrades *in place* (same object, a
    chip kill now active) cannot replay a stale program.  Cache entries
    record layout only — ``max_len`` and the fill level are free to
    vary, because the cache instructions re-derive offsets from the
    live caches every replay.
    """

    backend: str
    mesh_shape: tuple[int, int, int]
    plan: Any = None
    tokens_shape: tuple[int, ...] | None = None
    tokens_dtype: str | None = None
    cache_sig: tuple = ()
    kind: str = "decode"
    window: int = 1
    dead_chips: tuple = ()


def _cache_sig(cache) -> tuple:
    """Layout signature of one KV cache (max_len/fill level excluded)."""
    batch, _, kv, d = cache.global_shape
    return (str(cache.spec), batch, kv, d, str(cache.dtype),
            bool(cache.is_stacked))


def _dead_chips(mesh) -> tuple:
    """The mesh's currently-dead chips as a sorted, hashable tuple."""
    state = getattr(mesh, "fault_state", None)
    if state is None:
        return ()
    return tuple(sorted(state.dead_chips))


def bucket_batch(n: int, bucket: int) -> int:
    """Round a batch size up to the next multiple of ``bucket``."""
    if bucket <= 1:
        return n
    return ((n + bucket - 1) // bucket) * bucket


FUSE_ENV = "REPRO_CAPTURE_FUSE"


def fuse_window_from_env(default: int = 1) -> int:
    """Fusion window from the ``REPRO_CAPTURE_FUSE`` env knob (>= 1)."""
    raw = os.environ.get(FUSE_ENV, "")
    try:
        return max(1, int(raw))
    except ValueError:
        return max(1, default)


def _compile_ops(ops, template, out_vids):
    """Source-generate a straight-line runner for an instruction list.

    The interpreted executor pays a loop iteration, a list comprehension
    and two list index operations per instruction; at a few hundred
    tiny-kernel instructions per step that dispatch is a measurable
    slice of replay time.  The generated function calls the exact same
    closures in the exact same order with values held in locals, reads
    step-varying slots from ``values`` once, and writes back only the
    program outputs — so the executed kernel stream (and every bit of
    the result) is unchanged.
    """
    env: dict[str, Any] = {}
    lines = ["def _replay(values):"]
    available: set[int] = set()
    for idx, (fn, inputs, out, buffer) in enumerate(ops):
        env[f"f{idx}"] = fn
        for vid in inputs:
            if vid not in available:
                lines.append(f" v{vid} = values[{vid}]")
                available.add(vid)
        args = ", ".join(f"v{vid}" for vid in inputs)
        if buffer is not None:
            env[f"b{idx}"] = buffer
            call = f"f{idx}({args}, out=b{idx})"
        else:
            call = f"f{idx}({args})"
        if out is None:
            lines.append(f" {call}")
        else:
            lines.append(f" v{out} = {call}")
            available.add(out)
    for vid in out_vids:
        lines.append(f" values[{vid}] = v{vid}")
    exec(compile("\n".join(lines), "<captured-program>", "exec"), env)
    return env["_replay"]


class CapturedProgram:
    """A flat list of whole-mesh kernels replaying one traced program.

    ``out_vid`` may be a single value id (a decode step's logits) or a
    tuple of ids (a fused window's per-step sampled tokens); ``replay``
    returns the matching single array or tuple of arrays.
    """

    def __init__(self, mesh, instrs: list[_Instr], template: list,
                 out_vid, signature: ProgramSignature, *,
                 tokens_2d: bool = False, span_name: str = "captured_step",
                 collectives_captured: int = 0,
                 collectives_folded: int = 0,
                 optimized: bool = False):
        self.mesh = mesh
        self.signature = signature
        self.replays = 0
        self._instrs = instrs
        self._multi = isinstance(out_vid, tuple)
        self._out_vids = out_vid if self._multi else (out_vid,)
        self._out_vid = self._out_vids[-1]
        self._tokens_2d = tokens_2d
        self._span_name = span_name
        self.collectives_captured = collectives_captured
        self.collectives_folded = collectives_folded
        self.optimized = optimized
        # Fast-path execution tuples: one attribute walk at build time
        # instead of per instruction per replay.
        self._ops = tuple((ins.fn, ins.inputs, ins.out, ins.buffer)
                          for ins in instrs)
        self._template = template
        # Optimized programs additionally compile the instruction list
        # to straight-line Python (locals instead of a values list, no
        # dispatch loop) — same closures called in the same order.
        self._compiled = _compile_ops(self._ops, template,
                                      self._out_vids) if optimized \
            else None

    @property
    def n_instructions(self) -> int:
        return len(self._instrs)

    @property
    def collectives_live(self) -> int:
        return self.collectives_captured - self.collectives_folded

    @property
    def window(self) -> int:
        return self.signature.window

    @property
    def kind(self) -> str:
        return self.signature.kind

    # -- validity ----------------------------------------------------------

    def matches_mesh(self, mesh) -> bool:
        return mesh is self.mesh and mesh.backend == self.signature.backend

    def mismatch(self, model, tokens: np.ndarray,
                 caches: Sequence) -> str | None:
        """Why replaying would be invalid for these inputs (None: valid)."""
        sig = self.signature
        if model.mesh is not self.mesh:
            return "mesh"
        if model.mesh.backend != sig.backend:
            return "backend"
        if sig.plan is not None and model.plan != sig.plan:
            return "plan"
        if sig.tokens_shape is not None and (
                tokens.shape != sig.tokens_shape
                or str(tokens.dtype) != sig.tokens_dtype):
            return "tokens"
        if len(caches) != len(sig.cache_sig):
            return "caches"
        for cache, entry in zip(caches, sig.cache_sig):
            if cache.mesh is not self.mesh or _cache_sig(cache) != entry:
                return "caches"
        if _dead_chips(self.mesh) != sig.dead_chips:
            return "degraded"
        return None

    def matches(self, model, tokens: np.ndarray, caches: Sequence) -> bool:
        """True when replaying would be valid for these step inputs."""
        return self.mismatch(model, tokens, caches) is None

    # -- execution ---------------------------------------------------------

    def replay(self, tokens: np.ndarray | None = None,
               caches: Sequence = ()):
        """Execute the captured program against fresh step-varying inputs.

        Callers are responsible for validity (:meth:`matches`) and for
        only replaying while the mesh's fault state is quiescent —
        :class:`StepCompiler` enforces both.
        """
        values = list(self._template)
        ctx_tokens = tokens
        if tokens is not None and self._tokens_2d:
            ctx_tokens = tokens[:, None]
        values[0] = ReplayContext(ctx_tokens, caches)
        tracer = getattr(self.mesh, "tracer", None)
        if tracer is None:
            self._run(values)
        else:
            with tracer.phase("decode" if self.kind != "prefill"
                              else "prefill"):
                with tracer.region(
                        self._span_name, kind="replay",
                        instructions=self.n_instructions,
                        collectives=self.collectives_live,
                        collectives_folded=self.collectives_folded,
                        window=self.window):
                    self._run(values)
        state = getattr(self.mesh, "fault_state", None)
        if state is not None:
            # Keep the collective bookkeeping faithful: eager execution
            # would have bumped the counter once per captured collective.
            state.op_counter += self.collectives_captured
        self.replays += 1
        if self._multi:
            return tuple(values[v] for v in self._out_vids)
        return values[self._out_vid]

    def _run(self, values: list) -> None:
        if self._compiled is not None:
            self._compiled(values)
            return
        for fn, inputs, out, buffer in self._ops:
            args = [values[v] for v in inputs]
            if buffer is not None:
                result = fn(*args, out=buffer)
            else:
                result = fn(*args)
            if out is not None:
                values[out] = result

    def __repr__(self) -> str:
        return (f"CapturedProgram({self.signature.kind}x{self.window}, "
                f"{self.n_instructions} instrs, "
                f"{self.collectives_live}/{self.collectives_captured} "
                f"collectives live, mesh={self.signature.mesh_shape}, "
                f"backend={self.signature.backend!r})")


class StepRecorder:
    """Records one eager step's kernel stream into a dataflow tape.

    Installed as ``mesh.capture`` (duck-typed, mirroring ``tracer``); the
    hooks throughout :mod:`repro.mesh` and :mod:`repro.layouts` call
    :meth:`record` with a replay closure, the input arrays and the output
    array.  Arrays are identified by ``id``; the recorder keeps every
    seen array alive, so ids are stable for the capture's lifetime.  An
    input never seen before is a *constant* (a step-invariant like a
    weight shard).  Recording is failure-tolerant by design: anything
    unsupported calls :meth:`mark_broken` and the eager step simply
    completes without producing a program.
    """

    CTX = object()  # sentinel input: the per-replay ReplayContext

    def __init__(self, mesh, caches: Sequence = ()):
        self.mesh = mesh
        self.caches = list(caches)
        self.broken: str | None = None
        self.collectives = 0
        self._suppressed = 0
        self._instrs: list[_Instr] = []
        self._values: list[Any] = [None]       # vid 0 reserved for CTX
        self._vid_of: dict[int, int] = {}
        self._const: set[int] = set()

    @property
    def recording(self) -> bool:
        """False while suppressed (inside an op recorded at a coarser
        granularity) or after the capture broke."""
        return self._suppressed == 0 and self.broken is None

    @contextmanager
    def suppress(self):
        """Hide inner hook calls from an op recorded as one instruction."""
        self._suppressed += 1
        try:
            yield
        finally:
            self._suppressed -= 1

    def mark_broken(self, reason: str) -> None:
        if self.broken is None:
            self.broken = reason

    def cache_index(self, cache) -> int | None:
        """Slot of ``cache`` in the bound cache list (None breaks the
        capture: an unbound cache cannot be re-targeted at replay)."""
        for i, bound in enumerate(self.caches):
            if bound is cache:
                return i
        self.mark_broken("operation on a cache not bound to the capture")
        return None

    # -- tape construction -------------------------------------------------

    def _vid(self, arr) -> int:
        vid = self._vid_of.get(id(arr))
        if vid is None:
            vid = len(self._values)
            self._values.append(arr)
            self._vid_of[id(arr)] = vid
            self._const.add(vid)
        return vid

    def _define(self, arr) -> int:
        vid = len(self._values)
        self._values.append(arr)
        self._vid_of[id(arr)] = vid
        return vid

    def is_live(self, arr) -> bool:
        """True when ``arr`` was produced by a recorded instruction.

        Multi-step capture uses this to tell whether the tokens feeding a
        sub-step are a step-varying tape value (the previous sub-step's
        sampled tokens) rather than a caller-provided constant.
        """
        vid = self._vid_of.get(id(arr))
        return vid is not None and vid not in self._const

    def record(self, fn: Callable, inputs: Sequence, output,
               label: str = "", *, collective: bool = False,
               arena: bool = False, meta: tuple | None = None) -> None:
        """Append one instruction.

        ``fn`` must recompute ``output`` bit-identically from the input
        arrays (same kernel, resolved parameters baked in).  ``output``
        of ``None`` marks a side-effecting instruction (cache writes).
        With ``arena=True``, ``fn`` additionally accepts an ``out=``
        keyword buffer.  Pass :attr:`CTX` as an input for closures over
        the step-varying replay context.  ``meta`` optionally carries
        the op's resolved parameters for the tape optimizer
        (:mod:`repro.mesh.replay_opt`); it never affects plain replay.
        """
        if not self.recording:
            return
        ins = tuple(0 if x is self.CTX else self._vid(x) for x in inputs)
        out = self._define(output) if output is not None else None
        if collective:
            self.collectives += 1
        self._instrs.append(_Instr(fn, ins, out, label, collective, arena,
                                   meta))

    # -- program construction ----------------------------------------------

    def finalize(self, output, *,
                 signature: ProgramSignature | None = None,
                 tokens_2d: bool = False,
                 span_name: str = "captured_step",
                 optimize: bool = False) -> CapturedProgram | None:
        """Fold constants, build the arena, and emit the program.

        ``output`` may be a single array or a sequence of arrays (a
        fused window's per-step outputs).  Returns ``None`` when the
        capture broke, an output was not produced by a recorded
        instruction, or the whole program folded to a constant — the
        eager step still completed correctly, there is just nothing to
        replay.  ``optimize=True`` additionally runs the bit-exact tape
        optimizer (:mod:`repro.mesh.replay_opt`) over the live
        instructions before the arena is laid out.
        """
        if self.broken is not None:
            return None
        multi = isinstance(output, (tuple, list))
        outputs = tuple(output) if multi else (output,)
        out_vids = tuple(self._vid_of.get(id(o)) for o in outputs)
        if any(v is None or v in self._const for v in out_vids):
            return None

        # Constant folding: an instruction whose inputs are all
        # step-invariant produced a step-invariant output — and we hold
        # that output (the eager result), so folding costs nothing and
        # hoists the weight-gather collectives out of the step.
        const = set(self._const)
        kept: list[_Instr] = []
        folded_collectives = 0
        for ins in self._instrs:
            if ins.out is not None and all(v in const for v in ins.inputs):
                const.add(ins.out)
                if ins.collective:
                    folded_collectives += 1
                continue
            kept.append(ins)
        if any(v in const for v in out_vids):
            # The entire program is step-invariant (e.g. a probe that
            # touches no live input): replaying a constant is pointless
            # and would hide staleness bugs, so refuse to build one.
            return None

        optimized = False
        if optimize:
            from repro.mesh import replay_opt

            kept = replay_opt.optimize_tape(self, kept, const,
                                            set(out_vids))
            optimized = True

        template: list[Any] = [None] * len(self._values)
        for vid in const:
            template[vid] = self._values[vid]

        # Buffer arena: one preallocated output per arena-capable live
        # instruction, reused across steps (never within one — SSA).
        # The program outputs themselves are never arena-backed, so
        # callers may hold logits across replays.
        for ins in kept:
            if ins.arena and ins.out is not None \
                    and ins.out not in out_vids:
                captured = self._values[ins.out]
                ins.buffer = np.empty(captured.shape, captured.dtype)
        if optimized:
            from repro.mesh import replay_opt

            kept = replay_opt.freeze_stable_views(kept, template,
                                                  set(out_vids))

        if signature is None:
            signature = ProgramSignature(backend=self.mesh.backend,
                                         mesh_shape=self.mesh.shape)
        return CapturedProgram(
            self.mesh, kept, template,
            out_vids if multi else out_vids[0], signature,
            tokens_2d=tokens_2d, span_name=span_name,
            collectives_captured=self.collectives,
            collectives_folded=folded_collectives,
            optimized=optimized)


@contextmanager
def capturing(mesh, caches: Sequence = ()):
    """Install a :class:`StepRecorder` on ``mesh`` for the ``with`` body.

    The generic tape API: run any mesh program inside the block, then
    ``recorder.finalize(result_array)`` yields a replayable program (or
    ``None``).  :func:`capture_decode_step` builds on this for the
    model-level decode step.
    """
    if getattr(mesh, "capture", None) is not None:
        raise CaptureError("a capture is already active on this mesh")
    recorder = StepRecorder(mesh, caches)
    mesh.capture = recorder
    try:
        yield recorder
    finally:
        del mesh.capture


def _signature(model, tokens: np.ndarray, caches: Sequence, *,
               kind: str = "decode", window: int = 1) -> ProgramSignature:
    mesh = model.mesh
    return ProgramSignature(
        backend=mesh.backend, mesh_shape=mesh.shape,
        plan=getattr(model, "plan", None),
        tokens_shape=tokens.shape, tokens_dtype=str(tokens.dtype),
        cache_sig=tuple(_cache_sig(c) for c in caches),
        kind=kind, window=window, dead_chips=_dead_chips(mesh))


def capture_decode_step(model, tokens: np.ndarray, caches: Sequence
                        ) -> tuple[np.ndarray, CapturedProgram | None]:
    """Run one eager decode step while recording it.

    Returns ``(logits, program)`` — the logits are the eager step's
    (the step really ran: caches advanced exactly as usual), and the
    program replays subsequent steps bit-identically, or is ``None``
    when the step could not be captured.
    """
    mesh = model.mesh
    with capturing(mesh, caches) as recorder:
        logits = model.decode_step(tokens, caches)
    program = recorder.finalize(
        logits, signature=_signature(model, tokens, caches),
        tokens_2d=True)
    return logits, program


def capture_prefill_chunk(model, tokens: np.ndarray, caches: Sequence
                          ) -> tuple[np.ndarray, CapturedProgram | None]:
    """Run one eager prefill chunk (``model.forward``) while recording it.

    ``tokens`` is a 2-D ``[B, chunk]`` slice; the resulting program
    replays any later chunk of the *same shape* at any cache offset —
    the positions and KV-append instructions re-derive their offsets
    from the live caches.  Returns ``(logits, program)`` with the eager
    chunk's full ``[B, chunk, V]`` logits.
    """
    mesh = model.mesh
    with capturing(mesh, caches) as recorder:
        logits = model.forward(tokens, caches)
    program = recorder.finalize(
        logits, signature=_signature(model, tokens, caches,
                                     kind="prefill"),
        span_name="captured_prefill_chunk",
        optimize=mesh.backend == "stacked")
    return logits, program


def capture_fused_decode(model, tokens: np.ndarray, caches: Sequence,
                         window: int
                         ) -> tuple[list[np.ndarray],
                                    CapturedProgram | None]:
    """Run ``window`` eager decode steps inside one capture.

    The greedy sampling between sub-steps is recorded as a tape
    instruction, so each later sub-step consumes the previous sub-step's
    sampled tokens as a live tape value (the KV appends advance the
    cache in-tape too).  Returns ``(tokens_per_step, program)`` where
    ``tokens_per_step`` is the eager run's ``window`` sampled token
    arrays; the program replays a whole window per call and returns the
    matching tuple.
    """
    from repro.model.sampling import greedy

    mesh = model.mesh
    sampled: list[np.ndarray] = []
    with capturing(mesh, caches) as recorder:
        current = tokens
        for _ in range(window):
            logits = model.decode_step(current, caches)
            nxt = greedy(logits)
            recorder.record(greedy, (logits,), nxt, "greedy")
            sampled.append(nxt)
            current = nxt
    program = recorder.finalize(
        tuple(sampled),
        signature=_signature(model, tokens, caches, kind="fused",
                             window=window),
        tokens_2d=True, span_name="captured_fused_window",
        optimize=mesh.backend == "stacked")
    return sampled, program


class StepCompiler:
    """Capture-after-warmup, replay-while-valid serving-step driver.

    Drop-in replacement for calling ``model.decode_step`` directly::

        compiler = StepCompiler()
        logits = compiler.decode_step(model, tokens, caches)

    The first ``warmup_steps`` calls run eagerly (layout caches warm
    up); the next quiescent step is captured; every later call replays
    while the program's signature still matches and no fault is live.
    A mismatch (replanned mesh, new plan, different batch, migrated
    cache layout, changed dead-chip set) invalidates and triggers
    re-capture on the new deployment; a step with an active or pending
    fault falls back to eager execution so the fault machinery fires
    exactly as usual.

    v2 keeps a bounded LRU cache of programs instead of a single slot,
    keyed per (kind, window, deployment, token shape, cache layout)
    bucket — see :class:`ProgramSignature` — plus:

    * ``batch_bucket`` — a token batch smaller than the cache capacity
      is padded up to it (and the result sliced back) when the bucketed
      size rounds there, so a shrinking continuous-batching batch keeps
      hitting one warm program.  Padding duplicates the last row; batch
      rows are independent through every kernel, so the live rows'
      logits are bit-identical (tests assert it).
    * :meth:`decode_window` — fused multi-step decode via
      :func:`capture_fused_decode`, gated on the fault state being
      quiescent for the whole window and on cache room.
    * :meth:`prefill_chunk` — per-chunk-length prefill programs for
      :func:`repro.serving.chunked.chunked_prefill`.
    * :meth:`decode_thunk` — a pure zero-argument replay callable for
      the cluster's parallel replica stepping (all cache/counter
      bookkeeping happens on the calling thread).
    """

    def __init__(self, warmup_steps: int = 1, *, batch_bucket: int = 1,
                 max_programs: int = 8, fuse_window: int | None = None):
        self.warmup_steps = warmup_steps
        self.batch_bucket = max(1, batch_bucket)
        self.max_programs = max(1, max_programs)
        self.fuse_window = (fuse_window_from_env() if fuse_window is None
                            else max(1, fuse_window))
        self.eager_steps = 0
        self.captures = 0
        self.replays = 0
        self.invalidations = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidation_reasons: dict[str, int] = {}
        self._programs: OrderedDict[tuple, CapturedProgram] = OrderedDict()
        self._failed: set[tuple] = set()

    # -- cache bookkeeping -------------------------------------------------

    @property
    def program(self) -> CapturedProgram | None:
        """The most recently used program (None when the cache is empty)."""
        if not self._programs:
            return None
        return self._programs[next(reversed(self._programs))]

    @property
    def n_programs(self) -> int:
        return len(self._programs)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counter snapshot for the observability metrics tables."""
        return {
            "programs": self.n_programs,
            "eager_steps": self.eager_steps,
            "captures": self.captures,
            "replays": self.replays,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "invalidation_reasons": dict(self.invalidation_reasons),
        }

    def invalidate(self) -> None:
        """Drop every cached program (replan/failover hand-off)."""
        self.invalidations += len(self._programs)
        self._programs.clear()
        self._failed.clear()

    def _key(self, model, tokens: np.ndarray, caches: Sequence,
             kind: str, window: int) -> tuple:
        mesh = model.mesh
        return (kind, window, mesh.backend, mesh.shape,
                getattr(model, "plan", None), tokens.shape,
                str(tokens.dtype),
                tuple(_cache_sig(c) for c in caches), _dead_chips(mesh))

    def _drop(self, key: tuple, reason: str) -> None:
        del self._programs[key]
        self.invalidations += 1
        self.invalidation_reasons[reason] = \
            self.invalidation_reasons.get(reason, 0) + 1

    def _lookup(self, key: tuple, model, tokens: np.ndarray,
                caches: Sequence) -> CapturedProgram | None:
        program = self._programs.get(key)
        if program is None:
            return None
        reason = program.mismatch(model, tokens, caches)
        if reason is not None:
            self._drop(key, reason)
            return None
        self._programs.move_to_end(key)
        return program

    def _insert(self, key: tuple, program: CapturedProgram) -> None:
        while len(self._programs) >= self.max_programs:
            self._programs.popitem(last=False)
            self.evictions += 1
        self._programs[key] = program

    # -- decode ------------------------------------------------------------

    def decode_step(self, model, tokens: np.ndarray,
                    caches: Sequence) -> np.ndarray:
        """One decode step: replay a warm program when valid, else eager.

        With ``batch_bucket > 1`` a token batch below the cache capacity
        whose bucketed size rounds to that capacity is padded up (last
        row repeated) and the padded logits sliced back down, so the
        caller sees exactly its rows while the program cache sees one
        stable shape.
        """
        n = tokens.shape[0]
        if self.batch_bucket > 1 and caches:
            cap = caches[0].global_shape[0]
            if n < cap and bucket_batch(n, self.batch_bucket) >= cap:
                pad = np.broadcast_to(tokens[-1:],
                                      (cap - n,) + tokens.shape[1:])
                padded = np.concatenate([tokens, pad], axis=0)
                return self._decode(model, padded, caches)[:n]
        return self._decode(model, tokens, caches)

    def _decode(self, model, tokens: np.ndarray,
                caches: Sequence) -> np.ndarray:
        state = getattr(model.mesh, "fault_state", None)
        quiet = state is None or state.quiescent()
        key = self._key(model, tokens, caches, "decode", 1)
        program = self._lookup(key, model, tokens, caches)
        if program is not None and quiet:
            self.hits += 1
            self.replays += 1
            return program.replay(tokens, caches)
        if quiet:
            self.misses += 1
            if self.eager_steps >= self.warmup_steps \
                    and key not in self._failed:
                logits, program = capture_decode_step(model, tokens,
                                                      caches)
                if program is None:
                    self._failed.add(key)
                else:
                    self._insert(key, program)
                    self.captures += 1
                return logits
        self.eager_steps += 1
        return model.decode_step(tokens, caches)

    def decode_window(self, model, tokens: np.ndarray, caches: Sequence,
                      *, window: int | None = None,
                      advance=None) -> np.ndarray:
        """Decode up to ``window`` fused steps; returns ``[w, B]`` tokens.

        ``advance`` (optional) is called once per executed sub-step
        *before* the work runs — the caller owns the fault clock, and
        fused execution advances it exactly as a single-step loop would.
        The fused path is taken only when the fault state is quiescent
        for the whole window (:meth:`~repro.mesh.faults.FaultState.
        quiescent_for`) and the caches have room; otherwise exactly one
        single step runs (the caller loops), so faults, stragglers and
        window boundaries land on the eager/single-step machinery
        unchanged.
        """
        w = self.fuse_window if window is None else max(1, window)
        if caches:
            room = min(c.room for c in caches)
            w = max(1, min(w, room))  # window boundary: fall to 1 step
        state = getattr(model.mesh, "fault_state", None)
        fused_ok = (w > 1 and self.eager_steps >= self.warmup_steps
                    and (state is None or state.quiescent_for(w, "decode")))
        if not fused_ok:
            from repro.model.sampling import greedy

            if advance is not None:
                advance()
            logits = self.decode_step(model, tokens, caches)
            return greedy(logits)[None]
        for _ in range(w):
            if advance is not None:
                advance()
        key = self._key(model, tokens, caches, "fused", w)
        program = self._lookup(key, model, tokens, caches)
        if program is not None:
            self.hits += 1
            self.replays += 1
            return np.stack(program.replay(tokens, caches))
        self.misses += 1
        if key not in self._failed:
            sampled, program = capture_fused_decode(model, tokens, caches,
                                                    w)
            if program is None:
                self._failed.add(key)
            else:
                self._insert(key, program)
                self.captures += 1
            return np.stack(sampled)
        # Capture is known to fail for this shape: run the window as
        # plain eager steps (the clock already advanced w times).
        from repro.model.sampling import greedy

        sampled = []
        current = tokens
        for _ in range(w):
            current = greedy(model.decode_step(current, caches))
            sampled.append(current)
        self.eager_steps += w
        return np.stack(sampled)

    def decode_thunk(self, model, tokens: np.ndarray, caches: Sequence):
        """A pure zero-argument replay callable, or None.

        Returns a thunk only when a warm, valid program exists and the
        fault state is quiescent — i.e. exactly when :meth:`decode_step`
        would replay.  All shared-state bookkeeping (cache lookup,
        counters) happens here on the calling thread; the thunk touches
        only this replica's program and caches, so the cluster control
        plane may run thunks of *distinct* replicas concurrently.
        """
        state = getattr(model.mesh, "fault_state", None)
        if state is not None and not state.quiescent():
            return None
        key = self._key(model, tokens, caches, "decode", 1)
        program = self._lookup(key, model, tokens, caches)
        if program is None:
            return None
        self.hits += 1
        self.replays += 1
        return lambda: program.replay(tokens, caches)

    # -- prefill -----------------------------------------------------------

    def prefill_chunk(self, model, tokens: np.ndarray,
                      caches: Sequence) -> np.ndarray:
        """One prefill chunk (``[B, chunk]``), replayed per length bucket.

        Unlike decode there is no warmup gate: the first chunk of each
        (batch, length) bucket is captured, and every later chunk of the
        same shape — within this prompt or any later prompt on the same
        deployment — replays through the arena.
        """
        state = getattr(model.mesh, "fault_state", None)
        quiet = state is None or state.quiescent()
        key = self._key(model, tokens, caches, "prefill", 1)
        program = self._lookup(key, model, tokens, caches)
        if program is not None and quiet:
            self.hits += 1
            self.replays += 1
            return program.replay(tokens, caches)
        if quiet:
            self.misses += 1
            if key not in self._failed:
                logits, program = capture_prefill_chunk(model, tokens,
                                                        caches)
                if program is None:
                    self._failed.add(key)
                else:
                    self._insert(key, program)
                    self.captures += 1
                return logits
        self.eager_steps += 1
        return model.forward(tokens, caches)
