"""Capture-and-replay decode programs: a trace-once step compiler.

The decode phase is latency-critical and runs the *same* partitioned op
sequence every step (Sections 2, 3.5): the layouts, communication groups
and einsum shapes are all fixed for the lifetime of a (mesh, plan, batch)
deployment, yet the eager path re-derives every one of them per step —
``ShardSpec`` resolution, layout inference, group construction, weight
re-gathers.  At decode batch sizes that Python-side bookkeeping dominates
the (tiny) numpy compute.

This module removes it by *tracing one eager step*.  While a
:class:`StepRecorder` is installed on a mesh (duck-typed ``mesh.capture``,
like ``tracer``/``fault_state``/``comm_log``), every collective and
sharded einsum in :mod:`repro.mesh.ops`, every shard-level helper in
:mod:`repro.layouts`, and the KV-cache append/view operations record a
*replay closure* over their already-resolved kernel parameters, alongside
the identity of their input and output shard arrays.  The recorder links
those records into a dataflow tape; :meth:`StepRecorder.finalize` turns
the tape into a :class:`CapturedProgram`:

* **Constant folding** — any instruction whose inputs are all
  step-invariant (weights, or values derived only from weights) is
  dropped, and its *captured output* becomes a program constant.  This
  hoists the per-step weight all-gathers of the weight-gathered layouts
  (Section 3.2.3) out of the step entirely — the dominant collective
  count at decode — and is trivially bit-exact, because the constant is
  the very array the eager step produced.
* **Buffer arena** — instructions whose kernels accept an output buffer
  (batched einsums, residual adds) get a preallocated arena buffer
  matching their captured output, eliminating per-step allocation churn.
  Buffers are reused *across* steps, never within one (the tape is SSA),
  and the program's final output stays freshly allocated so callers may
  hold logits across steps.
* **Stable input slots** — the step-varying inputs (token ids, KV-cache
  pages, the decode position) enter through a :class:`ReplayContext`
  bound per replay; cache instructions index ``ctx.caches``, so a
  program survives cache hand-off as long as the cache *layout* matches.

``program.replay(tokens, caches)`` then executes the flat closure list —
no layout selection, no ``ShardSpec`` work, no group construction, no
``ShardedTensor`` validation — and is required to be **bit-identical** to
the eager step (the differential suite in
``tests/unit/test_step_capture.py`` asserts exact equality on both mesh
backends, across multiple steps and mesh shapes).

Interplay with the rest of the stack:

* **Faults** — replay consults nothing mid-step, so it only runs when
  the mesh's fault state is :meth:`~repro.mesh.faults.FaultState.
  quiescent`; :class:`StepCompiler` falls back to eager execution for
  any step on which a scheduled fault is live, so kills, timeouts,
  corruption and straggler delay fire exactly as they would eagerly.
* **Observability** — a replayed step emits one condensed
  ``kind="replay"`` span carrying the instruction/collective counts
  (inside the usual ``decode`` phase envelope), so Tracer-based tooling
  keeps working without paying per-op span costs.
* **Invalidation** — a program is only replayed while its signature
  matches: same mesh *object*, same plan, same token batch shape, same
  cache layouts.  Degraded replanning and cluster failover swap the mesh
  and models, which invalidates automatically; :class:`StepCompiler`
  then re-captures on the new deployment.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np


class CaptureError(RuntimeError):
    """A step could not be captured into a replayable program."""


class ReplayContext:
    """The step-varying inputs of one replayed step (the stable slots)."""

    __slots__ = ("tokens", "caches")

    def __init__(self, tokens: np.ndarray | None, caches: Sequence):
        self.tokens = tokens
        self.caches = caches


class _Instr:
    """One replayable instruction: a closure over resolved kernel params."""

    __slots__ = ("fn", "inputs", "out", "label", "collective", "arena",
                 "buffer")

    def __init__(self, fn: Callable, inputs: tuple[int, ...],
                 out: int | None, label: str, collective: bool,
                 arena: bool):
        self.fn = fn
        self.inputs = inputs
        self.out = out
        self.label = label
        self.collective = collective
        self.arena = arena
        self.buffer: np.ndarray | None = None


@dataclass(frozen=True)
class ProgramSignature:
    """What must stay unchanged for a program to remain valid.

    The mesh itself is compared by *object identity* (stored on the
    program, not here): replanning and failover build a new
    ``VirtualMesh``, so identity is the cheapest exact invalidation
    test.  Cache entries record layout only — ``max_len`` and the fill
    level are free to vary, because the cache instructions re-derive
    offsets from the live caches every replay.
    """

    backend: str
    mesh_shape: tuple[int, int, int]
    plan: Any = None
    tokens_shape: tuple[int, ...] | None = None
    tokens_dtype: str | None = None
    cache_sig: tuple = ()


def _cache_sig(cache) -> tuple:
    """Layout signature of one KV cache (max_len/fill level excluded)."""
    batch, _, kv, d = cache.global_shape
    return (str(cache.spec), batch, kv, d, str(cache.dtype),
            bool(cache.is_stacked))


class CapturedProgram:
    """A flat list of whole-mesh kernels replaying one decode step."""

    def __init__(self, mesh, instrs: list[_Instr], template: list,
                 out_vid: int, signature: ProgramSignature, *,
                 tokens_2d: bool = False, span_name: str = "captured_step",
                 collectives_captured: int = 0,
                 collectives_folded: int = 0):
        self.mesh = mesh
        self.signature = signature
        self.replays = 0
        self._instrs = instrs
        self._template = template
        self._out_vid = out_vid
        self._tokens_2d = tokens_2d
        self._span_name = span_name
        self.collectives_captured = collectives_captured
        self.collectives_folded = collectives_folded

    @property
    def n_instructions(self) -> int:
        return len(self._instrs)

    @property
    def collectives_live(self) -> int:
        return self.collectives_captured - self.collectives_folded

    # -- validity ----------------------------------------------------------

    def matches_mesh(self, mesh) -> bool:
        return mesh is self.mesh and mesh.backend == self.signature.backend

    def matches(self, model, tokens: np.ndarray, caches: Sequence) -> bool:
        """True when replaying would be valid for these step inputs."""
        sig = self.signature
        if not self.matches_mesh(model.mesh):
            return False
        if sig.plan is not None and model.plan != sig.plan:
            return False
        if sig.tokens_shape is not None and (
                tokens.shape != sig.tokens_shape
                or str(tokens.dtype) != sig.tokens_dtype):
            return False
        if len(caches) != len(sig.cache_sig):
            return False
        for cache, entry in zip(caches, sig.cache_sig):
            if cache.mesh is not self.mesh or _cache_sig(cache) != entry:
                return False
        return True

    # -- execution ---------------------------------------------------------

    def replay(self, tokens: np.ndarray | None = None,
               caches: Sequence = ()) -> np.ndarray:
        """Execute the captured step against fresh step-varying inputs.

        Callers are responsible for validity (:meth:`matches`) and for
        only replaying while the mesh's fault state is quiescent —
        :class:`StepCompiler` enforces both.
        """
        values = list(self._template)
        ctx_tokens = tokens
        if tokens is not None and self._tokens_2d:
            ctx_tokens = tokens[:, None]
        values[0] = ReplayContext(ctx_tokens, caches)
        tracer = getattr(self.mesh, "tracer", None)
        if tracer is None:
            out = self._run(values)
        else:
            with tracer.phase("decode"):
                with tracer.region(
                        self._span_name, kind="replay",
                        instructions=self.n_instructions,
                        collectives=self.collectives_live,
                        collectives_folded=self.collectives_folded):
                    out = self._run(values)
        state = getattr(self.mesh, "fault_state", None)
        if state is not None:
            # Keep the collective bookkeeping faithful: eager execution
            # would have bumped the counter once per captured collective.
            state.op_counter += self.collectives_captured
        self.replays += 1
        return out

    def _run(self, values: list) -> np.ndarray:
        for ins in self._instrs:
            args = [values[v] for v in ins.inputs]
            if ins.buffer is not None:
                result = ins.fn(*args, out=ins.buffer)
            else:
                result = ins.fn(*args)
            if ins.out is not None:
                values[ins.out] = result
        return values[self._out_vid]

    def __repr__(self) -> str:
        return (f"CapturedProgram({self.n_instructions} instrs, "
                f"{self.collectives_live}/{self.collectives_captured} "
                f"collectives live, mesh={self.signature.mesh_shape}, "
                f"backend={self.signature.backend!r})")


class StepRecorder:
    """Records one eager step's kernel stream into a dataflow tape.

    Installed as ``mesh.capture`` (duck-typed, mirroring ``tracer``); the
    hooks throughout :mod:`repro.mesh` and :mod:`repro.layouts` call
    :meth:`record` with a replay closure, the input arrays and the output
    array.  Arrays are identified by ``id``; the recorder keeps every
    seen array alive, so ids are stable for the capture's lifetime.  An
    input never seen before is a *constant* (a step-invariant like a
    weight shard).  Recording is failure-tolerant by design: anything
    unsupported calls :meth:`mark_broken` and the eager step simply
    completes without producing a program.
    """

    CTX = object()  # sentinel input: the per-replay ReplayContext

    def __init__(self, mesh, caches: Sequence = ()):
        self.mesh = mesh
        self.caches = list(caches)
        self.broken: str | None = None
        self.collectives = 0
        self._suppressed = 0
        self._instrs: list[_Instr] = []
        self._values: list[Any] = [None]       # vid 0 reserved for CTX
        self._vid_of: dict[int, int] = {}
        self._const: set[int] = set()

    @property
    def recording(self) -> bool:
        """False while suppressed (inside an op recorded at a coarser
        granularity) or after the capture broke."""
        return self._suppressed == 0 and self.broken is None

    @contextmanager
    def suppress(self):
        """Hide inner hook calls from an op recorded as one instruction."""
        self._suppressed += 1
        try:
            yield
        finally:
            self._suppressed -= 1

    def mark_broken(self, reason: str) -> None:
        if self.broken is None:
            self.broken = reason

    def cache_index(self, cache) -> int | None:
        """Slot of ``cache`` in the bound cache list (None breaks the
        capture: an unbound cache cannot be re-targeted at replay)."""
        for i, bound in enumerate(self.caches):
            if bound is cache:
                return i
        self.mark_broken("operation on a cache not bound to the capture")
        return None

    # -- tape construction -------------------------------------------------

    def _vid(self, arr) -> int:
        vid = self._vid_of.get(id(arr))
        if vid is None:
            vid = len(self._values)
            self._values.append(arr)
            self._vid_of[id(arr)] = vid
            self._const.add(vid)
        return vid

    def _define(self, arr) -> int:
        vid = len(self._values)
        self._values.append(arr)
        self._vid_of[id(arr)] = vid
        return vid

    def record(self, fn: Callable, inputs: Sequence, output,
               label: str = "", *, collective: bool = False,
               arena: bool = False) -> None:
        """Append one instruction.

        ``fn`` must recompute ``output`` bit-identically from the input
        arrays (same kernel, resolved parameters baked in).  ``output``
        of ``None`` marks a side-effecting instruction (cache writes).
        With ``arena=True``, ``fn`` additionally accepts an ``out=``
        keyword buffer.  Pass :attr:`CTX` as an input for closures over
        the step-varying replay context.
        """
        if not self.recording:
            return
        ins = tuple(0 if x is self.CTX else self._vid(x) for x in inputs)
        out = self._define(output) if output is not None else None
        if collective:
            self.collectives += 1
        self._instrs.append(_Instr(fn, ins, out, label, collective, arena))

    # -- program construction ----------------------------------------------

    def finalize(self, output: np.ndarray, *,
                 signature: ProgramSignature | None = None,
                 tokens_2d: bool = False,
                 span_name: str = "captured_step"
                 ) -> CapturedProgram | None:
        """Fold constants, build the arena, and emit the program.

        Returns ``None`` when the capture broke, ``output`` was not
        produced by a recorded instruction, or the whole program folded
        to a constant — the eager step still completed correctly, there
        is just nothing to replay.
        """
        if self.broken is not None:
            return None
        out_vid = self._vid_of.get(id(output))
        if out_vid is None or out_vid in self._const:
            return None

        # Constant folding: an instruction whose inputs are all
        # step-invariant produced a step-invariant output — and we hold
        # that output (the eager result), so folding costs nothing and
        # hoists the weight-gather collectives out of the step.
        const = set(self._const)
        kept: list[_Instr] = []
        folded_collectives = 0
        for ins in self._instrs:
            if ins.out is not None and all(v in const for v in ins.inputs):
                const.add(ins.out)
                if ins.collective:
                    folded_collectives += 1
                continue
            kept.append(ins)
        if out_vid in const:
            # The entire program is step-invariant (e.g. a probe that
            # touches no live input): replaying a constant is pointless
            # and would hide staleness bugs, so refuse to build one.
            return None

        template: list[Any] = [None] * len(self._values)
        for vid in const:
            template[vid] = self._values[vid]

        # Buffer arena: one preallocated output per arena-capable live
        # instruction, reused across steps (never within one — SSA).
        # The program output itself is never arena-backed, so callers
        # may hold logits across replays.
        for ins in kept:
            if ins.arena and ins.out is not None and ins.out != out_vid:
                captured = self._values[ins.out]
                ins.buffer = np.empty(captured.shape, captured.dtype)

        if signature is None:
            signature = ProgramSignature(backend=self.mesh.backend,
                                         mesh_shape=self.mesh.shape)
        return CapturedProgram(
            self.mesh, kept, template, out_vid, signature,
            tokens_2d=tokens_2d, span_name=span_name,
            collectives_captured=self.collectives,
            collectives_folded=folded_collectives)


@contextmanager
def capturing(mesh, caches: Sequence = ()):
    """Install a :class:`StepRecorder` on ``mesh`` for the ``with`` body.

    The generic tape API: run any mesh program inside the block, then
    ``recorder.finalize(result_array)`` yields a replayable program (or
    ``None``).  :func:`capture_decode_step` builds on this for the
    model-level decode step.
    """
    if getattr(mesh, "capture", None) is not None:
        raise CaptureError("a capture is already active on this mesh")
    recorder = StepRecorder(mesh, caches)
    mesh.capture = recorder
    try:
        yield recorder
    finally:
        del mesh.capture


def capture_decode_step(model, tokens: np.ndarray, caches: Sequence
                        ) -> tuple[np.ndarray, CapturedProgram | None]:
    """Run one eager decode step while recording it.

    Returns ``(logits, program)`` — the logits are the eager step's
    (the step really ran: caches advanced exactly as usual), and the
    program replays subsequent steps bit-identically, or is ``None``
    when the step could not be captured.
    """
    mesh = model.mesh
    with capturing(mesh, caches) as recorder:
        logits = model.decode_step(tokens, caches)
    signature = ProgramSignature(
        backend=mesh.backend, mesh_shape=mesh.shape, plan=model.plan,
        tokens_shape=tokens.shape, tokens_dtype=str(tokens.dtype),
        cache_sig=tuple(_cache_sig(c) for c in caches))
    program = recorder.finalize(logits, signature=signature,
                                tokens_2d=True)
    return logits, program


class StepCompiler:
    """Capture-after-warmup, replay-while-valid decode-step driver.

    Drop-in replacement for calling ``model.decode_step`` directly::

        compiler = StepCompiler()
        logits = compiler.decode_step(model, tokens, caches)

    The first ``warmup_steps`` calls run eagerly (layout caches warm
    up); the next quiescent step is captured; every later call replays
    while the program's signature still matches and no fault is live.
    A mismatch (replanned mesh, new plan, different batch, migrated
    cache layout) invalidates and triggers re-capture on the new
    deployment; a step with an active or pending fault falls back to
    eager execution so the fault machinery fires exactly as usual.
    """

    def __init__(self, warmup_steps: int = 1):
        self.warmup_steps = warmup_steps
        self.program: CapturedProgram | None = None
        self.eager_steps = 0
        self.captures = 0
        self.replays = 0
        self.invalidations = 0
        self._capture_failed = False

    def invalidate(self) -> None:
        if self.program is not None:
            self.program = None
            self.invalidations += 1
        self._capture_failed = False

    def decode_step(self, model, tokens: np.ndarray,
                    caches: Sequence) -> np.ndarray:
        state = getattr(model.mesh, "fault_state", None)
        quiet = state is None or state.quiescent()
        if self.program is not None and \
                not self.program.matches(model, tokens, caches):
            self.invalidate()
        if self.program is not None and quiet:
            self.replays += 1
            return self.program.replay(tokens, caches)
        if quiet and self.eager_steps >= self.warmup_steps \
                and not self._capture_failed:
            logits, program = capture_decode_step(model, tokens, caches)
            if program is None:
                self._capture_failed = True
            else:
                self.program = program
                self.captures += 1
            return logits
        self.eager_steps += 1
        return model.decode_step(tokens, caches)
