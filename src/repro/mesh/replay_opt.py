"""Bit-exact tape optimization for captured replay programs.

Replay cost at decode shapes is dominated by *per-numpy-call overhead*,
not FLOPs — the arrays are tiny, so every eliminated kernel invocation
is worth more than any amount of per-element cleverness.  The passes
here rewrite a captured tape (:mod:`repro.mesh.capture`) to issue fewer,
fatter calls while provably preserving every output bit:

* **Projection-einsum fusion** — consecutive stacked einsums that
  multiply the *same* activation by different step-invariant weights
  (Q/K/V projections; the SwiGLU in/gate pair) are replaced by one
  batched einsum against the concatenated weight plus cheap view-slices
  of the fused output.  Bit-exact because einsum's contraction loop per
  output element is unchanged — the concat axis is a free (output) axis,
  so each block of the fused result is computed from exactly the same
  inputs in exactly the same order.
* **RoPE table CSE** — every query/key rotation at the same positions
  recomputes identical cos/sin tables; one inserted instruction builds
  them per step (:func:`repro.model.rope.rope_tables`) and the rotations
  switch to :func:`repro.model.rope.apply_rope_cached`, which runs the
  identical multiply/add sequence on the identical tables.
* **Flat multiquery attention** — the stacked decode attention
  broadcast-materializes the shared KV head across the query-head
  groups; for the captured single-query multiquery case the same sums
  are computed directly from the unexpanded ``[B, M, D]`` K/V via a
  3-operand-subscript einsum, skipping the broadcast copy and the
  (provably all-True) mask branch.
* **Prebound collectives** — recorded collective closures re-resolve
  their ``_axes_meta`` per call; :func:`repro.mesh.stacked.
  prebind_collective` swaps in a closure with the metadata resolved
  once (same kernel body, so the same bits).

All passes are *conservative pattern matchers*: anything unrecognized
(loop-backend instructions, sharded-weight layouts, multi-token
attention) is left untouched.  The optimizer runs only for programs
finalized with ``optimize=True`` — fused decode windows and prefill
chunks — so the single-step decode program stays byte-for-byte the v1
tape and the published fused speedups are measured against it honestly.
The differential suites assert bit-identical logits for optimized
programs on every plan and backend they cover.
"""

from __future__ import annotations

import numpy as np

from repro.mesh import stacked as stacked_kernels
from repro.model.functional import softmax
from repro.model.rope import apply_rope_cached, rope_tables

try:  # same C kernel np.einsum dispatches to; skips its Python wrapper
    from numpy._core._multiarray_umath import c_einsum as _einsum
except ImportError:  # pragma: no cover - older numpy layouts
    _einsum = np.einsum


def optimize_tape(recorder, instrs, const, out_vids):
    """Rewrite the post-folding instruction list; returns the new list.

    ``recorder`` supplies the captured values (for shapes and weight
    constants) and grows its value table for newly created constants and
    intermediates; ``const`` is extended in place for new constants.
    """
    instrs, view_map = _fuse_projection_einsums(recorder, instrs, const,
                                                out_vids)
    instrs = _cse_rope_tables(recorder, instrs, const)
    instrs = _merge_rope_slabs(recorder, instrs, view_map)
    instrs = _flatten_attention(recorder, instrs)
    instrs = _prebind_einsums(recorder, instrs)
    instrs = _inplace_rope(recorder, instrs, out_vids)
    instrs = _inplace_elementwise(recorder, instrs, out_vids)
    instrs = _prebind_collectives(recorder, instrs)
    instrs = _eliminate_dead(instrs, out_vids)
    return instrs


def _add_value(recorder, value, const=None):
    vid = len(recorder._values)
    recorder._values.append(value)
    if const is not None:
        const.add(vid)
    return vid


# ---------------------------------------------------------------------------
# Projection-einsum fusion
# ---------------------------------------------------------------------------

def _distinct(letters: str) -> bool:
    return len(set(letters)) == len(letters)


def _canonical(lhs: str, rhs: str, out: str):
    """Split a projection einsum into ``(F, C, G)`` or return ``None``.

    The canonical form is ``lhs = F + C``, ``rhs = C + G``, ``out = F +
    G`` — a plain matrix product of the activation's trailing ``C`` dims
    against the weight, with free weight dims ``G``.  Any einsum in this
    form is bit-equal to the flattened ``F·C, C·g -> F·g`` product with
    ``g = prod(G)``: per output element the contraction runs over the
    same values in the same order, so c_einsum produces identical bits
    (the differential suites assert this on every covered shape).
    """
    if not (_distinct(lhs) and _distinct(rhs) and _distinct(out)):
        return None
    shared = [letter for letter in lhs if letter in rhs]
    c = "".join(shared)
    if not c or not lhs.endswith(c) or not rhs.startswith(c):
        return None
    if any(letter in out for letter in c):
        return None
    f = lhs[:len(lhs) - len(c)]
    g = rhs[len(c):]
    if not g or any(letter in lhs for letter in g):
        return None
    if out != f + g:
        return None
    return f, c, g


def _einsum_candidate(ins, const, out_vids):
    """(x_vid, w_vid, lhs, C, G) when ``ins`` is fusable, else None."""
    if ins.meta is None or ins.meta[0] != "einsum" or not ins.arena:
        return None
    if ins.out is None or ins.out in out_vids or len(ins.inputs) != 2:
        return None
    x_vid, w_vid = ins.inputs
    if x_vid in const or w_vid not in const:
        return None  # activation-times-constant-weight shapes only
    _, lhs, rhs, out = ins.meta
    canon = _canonical(lhs, rhs, out)
    if canon is None:
        return None
    f, c, g = canon
    return x_vid, w_vid, lhs, c, g


def _fresh_letter(used: str) -> str | None:
    for letter in "abcdefghijklmnopqrstuvwxyz":
        if letter not in used:
            return letter
    return None


def _viewer(start: int, stop: int, shape: tuple):
    def view(f):
        return f[..., start:stop].reshape(shape)
    view.const_view = True
    return view


def _fused_einsum(mesh, lhs: str, rhs: str, out_sub: str):
    subs = f"...{lhs},...{rhs}->...{out_sub}"

    def run(x, w, out=None):
        return _einsum(subs, x, w, out=out)
    return run


def _flat_trailing(arr: np.ndarray, n_free: int) -> np.ndarray:
    return arr.reshape(arr.shape[:arr.ndim - n_free] + (-1,))


def _fuse_projection_einsums(recorder, instrs, const, out_vids):
    """Collapse every same-activation projection group to one einsum.

    All einsums that multiply the *same* live activation by different
    constant weights with the same contraction suffix — Q, K and V; the
    SwiGLU in and gate — become a single flattened einsum against the
    concatenated (flattened) weights plus one view per original output.
    Returns the rewritten list and a ``{vid: (fused_vid, start, stop,
    shape)}`` map describing which outputs are now flat slices of a
    fused buffer (consumed by the rope-slab pass).
    """
    from repro.mesh.capture import _Instr

    values = recorder._values
    groups: list[list[int]] = []
    meta_of: dict[int, tuple] = {}
    open_groups: dict[tuple, list[int]] = {}
    for i, ins in enumerate(instrs):
        cand = _einsum_candidate(ins, const, out_vids)
        if cand is None:
            continue
        meta_of[i] = cand
        key = (cand[0], cand[2], cand[3])  # activation, lhs, C
        group = open_groups.get(key)
        if group is not None and values[meta_of[group[0]][1]].dtype \
                == values[cand[1]].dtype:
            group.append(i)
        else:
            group = [i]
            groups.append(group)
            open_groups[key] = group

    replacements: dict[int, list] = {}
    view_map: dict[int, tuple] = {}
    for group in groups:
        if len(group) < 2:
            continue
        x_vid, _, lhs, c, _ = meta_of[group[0]]
        z = _fresh_letter(lhs + c + "".join(m[4] for m in
                                            (meta_of[i] for i in group)))
        if z is None:
            continue
        f = lhs[:len(lhs) - len(c)]
        weights = [_flat_trailing(values[meta_of[i][1]],
                                  len(meta_of[i][4])) for i in group]
        outs = [values[instrs[i].out] for i in group]
        flat_outs = [_flat_trailing(o, len(meta_of[i][4]))
                     for o, i in zip(outs, group)]
        w_cat = np.concatenate(weights, axis=-1)
        fused_captured = np.concatenate(flat_outs, axis=-1)
        w_vid = _add_value(recorder, w_cat, const)
        fused_vid = _add_value(recorder, fused_captured)
        fused = _Instr(_fused_einsum(recorder.mesh, lhs, c + z, f + z),
                       (x_vid, w_vid), fused_vid,
                       f"einsum_fused:x{len(group)}", False, True)
        start = 0
        for j, i in enumerate(group):
            width = flat_outs[j].shape[-1]
            out_vid = instrs[i].out
            view = _Instr(_viewer(start, start + width, outs[j].shape),
                          (fused_vid,), out_vid, "einsum_view",
                          False, False)
            replacements[i] = [fused, view] if j == 0 else [view]
            view_map[out_vid] = (fused_vid, start, start + width,
                                 outs[j].shape)
            start += width

    if not replacements:
        return instrs, view_map
    rewritten = []
    for i, ins in enumerate(instrs):
        rewritten.extend(replacements.get(i, [ins]))
    return rewritten, view_map


# ---------------------------------------------------------------------------
# RoPE table CSE
# ---------------------------------------------------------------------------

def _rope_table_instr(d_head: int, theta: float):
    return lambda p: rope_tables(p, d_head, theta)


def _rope_cached(tab, s):
    return apply_rope_cached(s, tab)


def _cse_rope_tables(recorder, instrs, const):
    from repro.mesh.capture import _Instr

    values = recorder._values
    groups: dict[tuple, list[int]] = {}
    for i, ins in enumerate(instrs):
        if ins.meta is None or ins.meta[0] != "rope":
            continue
        if ins.out is None or len(ins.inputs) != 2:
            continue
        d_head = values[ins.out].shape[-1]
        groups.setdefault((ins.inputs[0], ins.meta[1], d_head),
                          []).append(i)

    inserts: dict[int, object] = {}
    rewrites: dict[int, object] = {}
    for (pos_vid, theta, d_head), members in groups.items():
        if len(members) < 2:
            continue
        captured = rope_tables(values[pos_vid], d_head, theta)
        tab_vid = _add_value(recorder, captured,
                             const if pos_vid in const else None)
        inserts[members[0]] = _Instr(_rope_table_instr(d_head, theta),
                                     (pos_vid,), tab_vid, "rope_tables",
                                     False, False)
        for i in members:
            ins = instrs[i]
            rewrites[i] = _Instr(_rope_cached, (tab_vid, ins.inputs[1]),
                                 ins.out, "rope_cached", False, False)

    if not rewrites:
        return instrs
    rewritten = []
    for i, ins in enumerate(instrs):
        if i in inserts:
            rewritten.append(inserts[i])
        rewritten.append(rewrites.get(i, ins))
    return rewritten


# ---------------------------------------------------------------------------
# Rope slab merge
# ---------------------------------------------------------------------------

def _slab_viewer(start: int, stop: int, rows: int, d: int):
    def view(f):
        return f[..., start:stop].reshape(f.shape[:-1] + (rows, d))
    view.const_view = True
    return view


def _row_viewer(start: int, stop: int):
    def view(r):
        return r[..., start:stop, :]
    view.const_view = True
    return view


def _merge_rope_slabs(recorder, instrs, view_map):
    """Rotate adjacent fused-buffer slices (Q then K) in one call.

    After projection fusion, Q and K are flat slices of the same fused
    buffer and both get rotated against the same table.  Rotation is
    elementwise over ``d``-sized pairs, so rotating the combined
    ``[..., rows, d]`` slab is bit-equal to rotating each slice — one
    :func:`apply_rope_cached` call replaces two, and the originals
    become row-views of the slab's output.
    """
    from repro.mesh.capture import _Instr

    values = recorder._values
    groups: dict[tuple, list[int]] = {}
    for i, ins in enumerate(instrs):
        if ins.label != "rope_cached" or len(ins.inputs) != 2:
            continue
        entry = view_map.get(ins.inputs[1])
        if entry is None:
            continue
        shape = entry[3]
        if len(shape) < 2 or shape[-2] * shape[-1] != entry[2] - entry[1]:
            continue
        groups.setdefault((ins.inputs[0], entry[0], shape[-1]),
                          []).append(i)

    inserts: dict[int, list] = {}
    rewrites: dict[int, object] = {}
    for (tab_vid, fused_vid, d), members in groups.items():
        members.sort(key=lambda i: view_map[instrs[i].inputs[1]][1])
        run: list[int] = []
        runs: list[list[int]] = []
        for i in members:
            if run and view_map[instrs[run[-1]].inputs[1]][2] \
                    == view_map[instrs[i].inputs[1]][1]:
                run.append(i)
            else:
                run = [i]
                runs.append(run)
        for run in runs:
            if len(run) < 2:
                continue
            start = view_map[instrs[run[0]].inputs[1]][1]
            stop = view_map[instrs[run[-1]].inputs[1]][2]
            rows = (stop - start) // d
            slab_captured = np.concatenate(
                [values[instrs[i].inputs[1]] for i in run], axis=-2)
            roped_captured = np.concatenate(
                [values[instrs[i].out] for i in run], axis=-2)
            slab_vid = _add_value(recorder, slab_captured)
            roped_vid = _add_value(recorder, roped_captured)
            slab = _Instr(_slab_viewer(start, stop, rows, d),
                          (fused_vid,), slab_vid, "rope_slab",
                          False, False)
            rope = _Instr(_rope_cached, (tab_vid, slab_vid), roped_vid,
                          "rope_cached", False, False)
            row = 0
            for j, i in enumerate(run):
                h = view_map[instrs[i].inputs[1]][3][-2]
                rewrites[i] = _Instr(_row_viewer(row, row + h),
                                     (roped_vid,), instrs[i].out,
                                     "rope_view", False, False)
                row += h
            inserts[run[0]] = [slab, rope]

    if not rewrites:
        return instrs
    rewritten = []
    for i, ins in enumerate(instrs):
        if i in inserts:
            rewritten.extend(inserts[i])
        rewritten.append(rewrites.get(i, ins))
    return rewritten


# ---------------------------------------------------------------------------
# Flat multiquery decode attention
# ---------------------------------------------------------------------------

def _flat_mq_attention(out_shape, dtype):
    # The query-side shapes are step-invariant, but the KV length ``m``
    # grows with the cache fill (a program replays at any fill — the
    # signature excludes it), so the score buffer is cached per ``m``;
    # the scale is the same ``1/sqrt(d_head)`` scalar the eager path
    # computes per call.  The einsums keep the mesh axes in the
    # subscripts and read the strided Q and KV views directly (no
    # per-call fold), and the second contraction writes straight into
    # the contiguous output buffer.
    lead = tuple(out_shape[:4])
    bsz = int(np.prod(lead))
    l, h, d = out_shape[4:]
    out = np.empty(out_shape, dtype)
    red = np.empty((bsz * h * l, 1), dtype)
    scale = 1.0 / np.sqrt(out_shape[-1])
    per_m = {}

    def run(qs, ks, vs):
        # Single query attending to its full history with one shared KV
        # head: the mask is provably all-True and the KV broadcast over
        # the query-head groups is expressed in the subscripts instead
        # of materialized.  Contraction per output element is the same
        # sum in the same order as the broadcast form (the mesh axes in
        # the subscripts only relabel the outer loop), the softmax runs
        # the same max/sub/exp/sum/div sequence in place on a collapsed
        # view of the same rows, so the bits match (the differential
        # tests assert it).
        m = ks.shape[4]
        bufs = per_m.get(m)
        if bufs is None:
            s7 = np.empty(lead + (h, l, m), dtype)
            bufs = per_m[m] = (s7, s7.reshape(bsz * h * l, m))
        s7, s2 = bufs
        k = ks[:, :, :, :, :, 0, :]
        v = vs[:, :, :, :, :, 0, :]
        _einsum("wxyzlhd,wxyzmd->wxyzhlm", qs, k, out=s7)
        np.multiply(s2, scale, out=s2)
        # np.max/np.sum are Python wrappers over these same ufunc
        # reductions (identical pairwise algorithm, identical bits).
        np.maximum.reduce(s2, axis=-1, keepdims=True, out=red)
        np.subtract(s2, red, out=s2)
        np.exp(s2, out=s2)
        np.add.reduce(s2, axis=-1, keepdims=True, out=red)
        np.divide(s2, red, out=s2)
        _einsum("wxyzhlm,wxyzmd->wxyzlhd", s7, v, out=out)
        return out
    run.out_buffer = out
    return run


def _flat_mq_prefill_attention(out_shape, dtype):
    # Prefill (L > 1) attends through a causal mask, and the KV length
    # ``m`` varies between replays (the same chunk program runs at any
    # cache offset), so the score buffer and mask are cached per ``m``
    # instead of preallocated.  The mask fill value is the same
    # ``finfo.min`` that ``masked_softmax`` uses.
    lead = tuple(out_shape[:4])
    bsz = int(np.prod(lead))
    l, h, d = out_shape[4:]
    out = np.empty(out_shape, dtype)
    red = np.empty((bsz * h, l, 1), dtype)
    scale = 1.0 / np.sqrt(out_shape[-1])
    neg = np.finfo(dtype).min
    per_m = {}

    def run(qs, ks, vs):
        from repro.model.functional import causal_mask

        # Same subscripts-instead-of-broadcast contraction as the decode
        # variant; the masking writes ``finfo.min`` into the same
        # positions ``np.where(mask, scores, neg)`` would, and the
        # softmax runs the same max/sub/exp/sum/div sequence in place
        # on a collapsed view of the same rows, so the bits match (the
        # differential tests assert it).
        m = ks.shape[4]
        cached = per_m.get(m)
        if cached is None:
            s7 = np.empty(lead + (h, l, m), dtype)
            cached = (s7, s7.reshape(bsz * h, l, m),
                      ~causal_mask(l, m, m - l))
            per_m[m] = cached
        s7, s3, dead = cached
        k = ks[:, :, :, :, :, 0, :]
        v = vs[:, :, :, :, :, 0, :]
        _einsum("wxyzlhd,wxyzmd->wxyzhlm", qs, k, out=s7)
        np.multiply(s3, scale, out=s3)
        np.copyto(s3, neg, where=dead)
        np.maximum.reduce(s3, axis=-1, keepdims=True, out=red)
        np.subtract(s3, red, out=s3)
        np.exp(s3, out=s3)
        np.add.reduce(s3, axis=-1, keepdims=True, out=red)
        np.divide(s3, red, out=s3)
        _einsum("wxyzhlm,wxyzmd->wxyzlhd", s7, v, out=out)
        return out
    run.out_buffer = out
    return run


def _flatten_attention(recorder, instrs):
    from repro.mesh.capture import _Instr

    values = recorder._values
    rewritten = []
    for ins in instrs:
        if (ins.meta is not None and ins.meta[0] == "attention"
                and ins.out is not None and len(ins.inputs) == 3):
            qs = values[ins.inputs[0]]
            ks = values[ins.inputs[1]]
            if (qs.ndim == 7 and ks.ndim == 7 and ks.shape[5] == 1
                    and qs.shape[5] > 1):
                captured = values[ins.out]
                if qs.shape[4] == 1:
                    fn = _flat_mq_attention(captured.shape, captured.dtype)
                else:
                    fn = _flat_mq_prefill_attention(captured.shape,
                                                    captured.dtype)
                rewritten.append(_Instr(fn, ins.inputs, ins.out,
                                        "attention_flat", False, False))
                continue
        rewritten.append(ins)
    return rewritten


# ---------------------------------------------------------------------------
# Prebound einsums and in-place rope
# ---------------------------------------------------------------------------

def _prebind_einsums(recorder, instrs):
    """Swap remaining stacked einsums to direct prebuilt-subscript calls.

    The recorded closures rebuild the ellipsis subscript string and go
    through ``np.einsum``'s Python wrapper on every call; this binds the
    string once and calls the same C kernel directly — identical
    subscripts, identical operands, identical bits.
    """
    from repro.mesh.capture import _Instr

    rewritten = []
    for ins in instrs:
        meta = ins.meta
        if (meta is not None and meta[0] == "einsum"
                and len(ins.inputs) == 2 and ins.out is not None):
            fn = _fused_einsum(recorder.mesh, meta[1], meta[2], meta[3])
            rewritten.append(_Instr(fn, ins.inputs, ins.out, ins.label,
                                    ins.collective, ins.arena, meta))
            continue
        rewritten.append(ins)
    return rewritten


def _rope_inplace_runner(shape, dtype):
    """Rotation with preallocated output/scratch — same arithmetic as
    :func:`repro.model.rope.apply_rope_cached`, each elementwise product
    and sum computed on the same operands in the same order, just written
    through ``out=`` into reused buffers (reuse follows the arena policy:
    programs replay serially, every consumer reads within the step).

    Large slabs (prefill chunks) are de-interleaved into contiguous
    half-width scratch first: the products and sums then run on
    contiguous data instead of stride-2 views of a strided projection
    slab, and the results are written back into the interleaved output.
    The copies move values verbatim and every product/sum sees the same
    operands in the same order, so the bits are unchanged; for tiny
    decode slabs the extra dispatches would dominate, so those keep the
    direct strided form.
    """
    out = np.empty(shape, dtype)
    even, odd = out[..., 0::2], out[..., 1::2]
    tmp = np.empty(even.shape, dtype)

    if int(np.prod(shape)) >= 4096:
        half = even.shape
        x1b = np.empty(half, dtype)
        x2b = np.empty(half, dtype)
        oe = np.empty(half, dtype)
        oo = np.empty(half, dtype)
        cosb = np.empty(half, dtype)
        sinb = np.empty(half, dtype)

        def run(tab, x):
            cos, sin = tab
            np.copyto(x1b, x[..., 0::2])
            np.copyto(x2b, x[..., 1::2])
            np.copyto(cosb, cos)
            np.copyto(sinb, sin)
            np.multiply(x1b, cosb, out=oe)
            np.multiply(x2b, sinb, out=tmp)
            np.subtract(oe, tmp, out=oe)
            np.multiply(x1b, sinb, out=oo)
            np.multiply(x2b, cosb, out=tmp)
            np.add(oo, tmp, out=oo)
            even[...] = oe
            odd[...] = oo
            return out
    else:
        def run(tab, x):
            cos, sin = tab
            x1, x2 = x[..., 0::2], x[..., 1::2]
            np.multiply(x1, cos, out=even)
            np.multiply(x2, sin, out=tmp)
            np.subtract(even, tmp, out=even)
            np.multiply(x1, sin, out=odd)
            np.multiply(x2, cos, out=tmp)
            np.add(odd, tmp, out=odd)
            return out
    run.out_buffer = out
    return run


def _inplace_rope(recorder, instrs, out_vids):
    from repro.mesh.capture import _Instr

    values = recorder._values
    rewritten = []
    for ins in instrs:
        if (ins.label == "rope_cached" and len(ins.inputs) == 2
                and ins.out is not None and ins.out not in out_vids):
            captured = values[ins.out]
            fn = _rope_inplace_runner(captured.shape, captured.dtype)
            rewritten.append(_Instr(fn, ins.inputs, ins.out,
                                    "rope_inplace", False, False))
            continue
        rewritten.append(ins)
    return rewritten


def _swish_runner(shape, dtype):
    """``x / (1.0 + exp(-x))`` through a preallocated buffer — same three
    elementwise ops on the same operands (float addition is commutative
    under IEEE rounding, so ``exp(-x) + 1.0`` is ``1.0 + exp(-x)``)."""
    out = np.empty(shape, dtype)

    def run(x):
        np.negative(x, out=out)
        np.exp(out, out=out)
        np.add(out, 1.0, out=out)
        np.divide(x, out, out=out)
        return out
    run.out_buffer = out
    return run


def _mul_runner(shape, dtype):
    out = np.empty(shape, dtype)

    def run(a, b):
        np.multiply(a, b, out=out)
        return out
    run.out_buffer = out
    return run


def _norm_runner(e_size, eps, out_shape, ss_shape, dtype):
    """The stacked RMSNorm body with preallocated output and rms scratch:
    ``sqrt(ss / e + eps)`` then ``(x * scale) / rms``, each op on the same
    operands in the same order as the recorded closure."""
    out = np.empty(out_shape, dtype)
    rbuf = np.empty(tuple(ss_shape) + (1,), dtype)

    def run(xs, ss, sc):
        np.divide(ss[..., None], e_size, out=rbuf)
        np.add(rbuf, eps, out=rbuf)
        np.sqrt(rbuf, out=rbuf)
        np.multiply(xs, sc[:, :, :, None, None, :], out=out)
        np.divide(out, rbuf, out=out)
        return out
    run.out_buffer = out
    return run


def _inplace_elementwise(recorder, instrs, out_vids):
    """Rewrite recognized elementwise closures to buffered in-place runs.

    Stacked elementwise ``map_shards``/``zip_shards`` record the user
    function itself, so Swish and the SwiGLU gate product are matched by
    identity; the stacked RMSNorm is matched by its meta tag.  Each
    rewrite performs the identical elementwise arithmetic, only writing
    through ``out=`` into buffers reused under the arena policy.
    """
    from repro.mesh.capture import _Instr
    from repro.model import functional

    values = recorder._values
    rewritten = []
    for ins in instrs:
        if ins.out is None or ins.out in out_vids:
            rewritten.append(ins)
            continue
        captured = values[ins.out]
        if ins.fn is functional.swish and len(ins.inputs) == 1:
            fn = _swish_runner(captured.shape, captured.dtype)
            label = "swish_inplace"
        elif ins.fn is np.multiply and len(ins.inputs) == 2 \
                and values[ins.inputs[0]].shape == captured.shape \
                and values[ins.inputs[1]].shape == captured.shape:
            fn = _mul_runner(captured.shape, captured.dtype)
            label = "mul_inplace"
        elif (ins.meta is not None and ins.meta[0] == "rmsnorm"
                and len(ins.inputs) == 3):
            fn = _norm_runner(ins.meta[1], ins.meta[2], captured.shape,
                              values[ins.inputs[1]].shape, captured.dtype)
            label = "rmsnorm_inplace"
        else:
            rewritten.append(ins)
            continue
        rewritten.append(_Instr(fn, ins.inputs, ins.out, label,
                                False, False))
    return rewritten


# ---------------------------------------------------------------------------
# Prebound collectives
# ---------------------------------------------------------------------------

def _prebind_collectives(recorder, instrs):
    from repro.mesh.capture import _Instr

    values = recorder._values
    rewritten = []
    for ins in instrs:
        meta = ins.meta
        if (meta is not None and len(ins.inputs) == 1
                and meta[0] in ("all_gather", "reduce_scatter",
                                "all_reduce")):
            dim_idx = meta[2] if len(meta) > 2 else None
            operand = values[ins.inputs[0]]
            fn = stacked_kernels.prebind_collective_indexed(
                recorder.mesh, meta[0], meta[1], dim_idx,
                operand.shape, operand.dtype)
            if fn is None:
                fn = stacked_kernels.prebind_collective(
                    recorder.mesh, meta[0], meta[1], dim_idx)
            if fn is not None:
                rewritten.append(_Instr(fn, ins.inputs, ins.out,
                                        ins.label, ins.collective,
                                        ins.arena))
                continue
        rewritten.append(ins)
    return rewritten


# ---------------------------------------------------------------------------
# View freezing
# ---------------------------------------------------------------------------

def freeze_stable_views(instrs, template, out_vids):
    """Hoist views of fixed arena buffers out of the replay loop.

    Called from ``finalize`` *after* arena allocation: an instruction
    whose kernel writes through ``out=`` into a preallocated buffer
    produces the *same array object* on every replay, so any pure view
    of it (``const_view``-marked slices from the fusion and rope passes)
    is itself the same object every time.  The view is computed once
    here, stored in the value template, and its instruction dropped —
    consumers read the live bytes through the frozen window exactly as
    they would through a per-replay one.
    """
    stable: dict[int, np.ndarray] = {}
    for ins in instrs:
        if ins.out is None:
            continue
        if ins.buffer is not None:
            stable[ins.out] = ins.buffer
        else:
            buf = getattr(ins.fn, "out_buffer", None)
            if buf is not None:
                stable[ins.out] = buf

    kept = []
    for ins in instrs:
        if (getattr(ins.fn, "const_view", False) and len(ins.inputs) == 1
                and ins.inputs[0] in stable and ins.out is not None
                and ins.out not in out_vids):
            frozen = ins.fn(stable[ins.inputs[0]])
            # A reshape that could not stay a view would be a stale
            # snapshot, not a window — only freeze genuine views.
            if np.shares_memory(frozen, stable[ins.inputs[0]]):
                template[ins.out] = frozen
                stable[ins.out] = frozen
                continue
        kept.append(ins)
    return kept


# ---------------------------------------------------------------------------
# Dead-code elimination
# ---------------------------------------------------------------------------

def _eliminate_dead(instrs, out_vids):
    """Drop pure instructions whose outputs nothing consumes.

    Earlier passes strand instructions (a projection view whose only
    consumer became a rope slab, say).  Side-effecting instructions —
    ``out is None``, e.g. KV appends — and collectives are always kept:
    the latter so the replayed collective count (and with it the fault
    clock) matches the eager step exactly.
    """
    needed = set(out_vids)
    kept_rev = []
    for ins in reversed(instrs):
        if ins.out is None or ins.collective or ins.out in needed:
            kept_rev.append(ins)
            needed.update(ins.inputs)
    return kept_rev[::-1]
