"""Loop-vs-stacked backend benchmark on a decode-step workload.

The two mesh backends are semantically identical (the differential tests
assert bit-equality), so the only question is speed: the loop backend
pays Python-interpreter time per device per op, the stacked backend runs
each collective/einsum as one whole-mesh numpy call.  This module defines
the shared decode-step workload — a deep, narrow multiquery model under a
weight-gathered FFN layout with batch-sharded attention — and timing
helpers used by both the CLI ``mesh-bench`` subcommand and
``benchmarks/bench_mesh_backend.py``.

The workload is chosen to mirror where the backends diverge most: at
decode batch sizes the per-device tensors are tiny, so the loop backend's
per-device Python dispatch dominates while the stacked backend stays in
single whole-mesh numpy calls.  The weight-gathered layout (Section 3.2.3)
re-gathers every weight each step, maximizing collective traffic per unit
of compute — exactly the regime the stacked backend exists for.  Model
dims divide evenly on every mesh from 1x1x1 up to 4x4x4 (H % 16,
B % 64).
"""

from __future__ import annotations

import time

import numpy as np

from repro.mesh.virtual_mesh import BACKENDS, VirtualMesh

# Smallest-to-largest torus shapes, matching how real slices grow.
MESH_SHAPES = ((1, 1, 1), (1, 1, 2), (1, 2, 2), (2, 2, 2),
               (2, 2, 4), (2, 4, 4), (4, 4, 4))


def decode_config():
    """Benchmark model: deep and narrow, divisible on every mesh."""
    from repro.model import tiny_test_config

    return tiny_test_config(n_layers=16, d_model=16, d_ff=32, n_heads=16,
                            d_head=4, vocab_size=16)


def _build(mesh_shape, backend, batch, max_len, seed=0):
    from repro.layouts import ShardedTransformer
    from repro.model import init_weights
    from repro.partitioning import (
        AttentionLayoutKind,
        FfnLayoutKind,
        LayoutPlan,
    )

    config = decode_config()
    weights = init_weights(config, seed=seed)
    plan = LayoutPlan(FfnLayoutKind.WG_XY, AttentionLayoutKind.BATCH)
    model = ShardedTransformer(weights, VirtualMesh(mesh_shape,
                                                    backend=backend), plan)
    prompt = np.random.default_rng(seed + 1).integers(
        0, config.vocab_size, size=(batch, 4))
    _, caches = model.prefill(prompt, max_len)
    return model, caches, prompt


def time_decode(mesh_shape, backend, *, steps: int = 4, batch: int = 64,
                reps: int = 3, seed: int = 0,
                trace: bool = False) -> tuple[float, np.ndarray]:
    """Best-of-``reps`` mean seconds per decode step plus final logits.

    One untimed warm-up step amortizes cache/layout setup; timing the
    best of several repetitions filters scheduler noise.  The returned
    logits let callers assert cross-backend equality on the exact
    workload being timed.  With ``trace=True`` a span tracer is installed
    before the timed steps — the knob behind
    ``benchmarks/bench_observability_overhead.py``.
    """
    # prompt + warm-up step + timed steps per repetition
    model, caches, prompt = _build(mesh_shape, backend, batch,
                                   4 + 1 + steps * reps, seed)
    if trace:
        model.mesh.install_tracer()
    token = prompt[:, -1]
    logits = model.decode_step(token, caches)  # warm-up
    token = np.argmax(logits, -1)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        for _ in range(steps):
            logits = model.decode_step(token, caches)
        best = min(best, (time.perf_counter() - start) / steps)
    return best, logits


def compare_backends(mesh_shapes=MESH_SHAPES, *, steps: int = 4,
                     batch: int = 64, reps: int = 3,
                     backends=BACKENDS) -> list[dict]:
    """Time each backend on each mesh; verify identical logits.

    Returns one row dict per mesh shape with per-backend seconds/step and
    the loop/stacked speedup (when both backends ran).
    """
    rows = []
    for shape in mesh_shapes:
        row: dict = {"mesh": "x".join(map(str, shape)),
                     "chips": int(np.prod(shape))}
        logits = {}
        for backend in backends:
            seconds, out = time_decode(shape, backend, steps=steps,
                                       batch=batch, reps=reps)
            row[f"{backend}_s"] = seconds
            logits[backend] = out
        if "loop" in logits and "stacked" in logits:
            if not np.array_equal(logits["loop"], logits["stacked"]):
                raise AssertionError(
                    f"backends disagree on mesh {row['mesh']}")
            row["speedup"] = row["loop_s"] / row["stacked_s"]
        rows.append(row)
    return rows


#: Decode batch for the capture benchmark: the latency-oriented decode
#: point (per-chip batch 1 on the 4x4x4 torus under the BATCH attention
#: layout), where step time is Python-bookkeeping-bound — the regime the
#: step compiler exists for.  Throughput-oriented batches amortize the
#: bookkeeping over more numpy work, shrinking the replay advantage.
CAPTURE_BATCH = 16


def time_capture(mesh_shape, backend, *, steps: int = 4, batch: int =
                 CAPTURE_BATCH, reps: int = 3, seed: int = 0) -> dict:
    """Eager vs captured-replay seconds/step on one mesh, plus bit checks.

    Timing methodology: attention cost grows with the KV history length,
    so eager and replay windows are only comparable at the *same* cache
    fill.  Every timed repetition first resets the caches to a common
    base length; the timed steps then re-run the same decode positions
    (re-writing identical KV entries), so both modes pay identical numpy
    work and differ only in dispatch.
    """
    from repro.mesh.capture import capture_decode_step

    model, caches, prompt = _build(mesh_shape, backend, batch,
                                   4 + 2 + steps, seed)
    token = prompt[:, -1]
    logits = model.decode_step(token, caches)  # warm-up
    token = np.argmax(logits, -1)
    _, program = capture_decode_step(model, token, caches)
    if program is None:
        raise AssertionError(
            f"decode step did not capture on {mesh_shape} {backend}")

    # Bit-identity on the step after capture: run it once eagerly and
    # once replayed from the same cache state and require exact equality.
    base = caches[0].length
    eager_logits = model.decode_step(token, caches)
    for cache in caches:
        cache.length = base
    replay_logits = program.replay(token, caches)
    bit_identical = bool(np.array_equal(eager_logits, replay_logits))

    def best_of(step_fn) -> float:
        best = float("inf")
        for _ in range(reps):
            for cache in caches:
                cache.length = base
            start = time.perf_counter()
            for _ in range(steps):
                step_fn()
            best = min(best, (time.perf_counter() - start) / steps)
        return best

    eager_s = best_of(lambda: model.decode_step(token, caches))
    replay_s = best_of(lambda: program.replay(token, caches))
    return {
        "mesh": "x".join(map(str, mesh_shape)),
        "chips": int(np.prod(mesh_shape)),
        "backend": backend,
        "eager_s": eager_s,
        "replay_s": replay_s,
        "speedup": eager_s / replay_s,
        "bit_identical": bit_identical,
        "instructions": program.n_instructions,
        "collectives_live": program.collectives_live,
        "collectives_folded": program.collectives_folded,
    }


def compare_capture(mesh_shapes=MESH_SHAPES, *, steps: int = 4,
                    batch: int = CAPTURE_BATCH, reps: int = 3,
                    backends=BACKENDS) -> list[dict]:
    """One :func:`time_capture` row per (mesh shape, backend)."""
    return [time_capture(shape, backend, steps=steps, batch=batch,
                         reps=reps)
            for shape in mesh_shapes for backend in backends]


#: Fusion window the capture-v2 benchmark times.  Wider windows amortize
#: more per-step dispatch but replay later sub-steps against a longer KV
#: history (attention cost grows with the fill), so the per-step gain
#: saturates and then falls; 4 is the measured sweet spot on the decode
#: workload.
CAPTURE_V2_WINDOW = 4

#: Prefill chunk length the capture-v2 benchmark times.
CAPTURE_V2_CHUNK = 8

# Interleaved paired timing: alternating the two step functions within
# one loop keeps scheduler/allocator drift common-mode (cross-process or
# phase-separated timings of these sub-millisecond steps are dominated
# by noise).  Each sample resets the KV fill to the common base first.


def time_capture_fused(mesh_shape, backend, *,
                       window: int = CAPTURE_V2_WINDOW,
                       batch: int = CAPTURE_BATCH, reps: int = 8,
                       seed: int = 0) -> dict:
    """Single-step replay vs fused ``window``-step replay, per step.

    Both modes decode the same ``window`` positions from the same cache
    base per sample (the fused program replays them in one call), so the
    numpy work is identical and the delta is per-step dispatch +
    fused-tape optimization.  Bit-identity of the fused tokens against
    ``window`` eager greedy steps is asserted from the same base.
    """
    from repro.mesh.capture import capture_decode_step, capture_fused_decode
    from repro.model.sampling import greedy

    model, caches, prompt = _build(mesh_shape, backend, batch,
                                   4 + 3 + 2 * window, seed)
    token = prompt[:, -1]
    logits = model.decode_step(token, caches)  # warm-up
    token = np.argmax(logits, -1)
    _, program = capture_decode_step(model, token, caches)
    sampled, fused = capture_fused_decode(model, token, caches, window)
    if program is None or fused is None:
        raise AssertionError(
            f"decode step did not capture on {mesh_shape} {backend}")
    base = caches[0].length

    def reset():
        for cache in caches:
            cache.length = base

    # Bit-identity: eager window vs fused replay from the same base.
    reset()
    eager_tokens = []
    current = token
    for _ in range(window):
        current = greedy(model.decode_step(current, caches))
        eager_tokens.append(current)
    reset()
    replayed = fused.replay(token, caches)
    bit_identical = all(
        np.array_equal(e, r) for e, r in zip(eager_tokens, replayed))

    def single_window():
        for _ in range(window):
            program.replay(token, caches)

    # Each mode is timed in consecutive blocks (a warm-up window, then
    # ``reps`` timed windows) because that is how replays run in the
    # serving loop — a decode stream replays the same program back to
    # back, never alternating with a different program's working set.
    # The blocks themselves alternate across rounds so slow machine
    # drift hits both modes equally.
    best_single = best_fused = float("inf")
    for _ in range(3):
        reset()
        single_window()
        for _ in range(reps):
            reset()
            start = time.perf_counter()
            single_window()
            best_single = min(best_single,
                              (time.perf_counter() - start) / window)
        reset()
        fused.replay(token, caches)
        for _ in range(reps):
            reset()
            start = time.perf_counter()
            fused.replay(token, caches)
            best_fused = min(best_fused,
                             (time.perf_counter() - start) / window)
    reset()
    return {
        "mesh": "x".join(map(str, mesh_shape)),
        "chips": int(np.prod(mesh_shape)),
        "backend": backend,
        "window": window,
        "replay1_s": best_single,
        "fused_s": best_fused,
        "speedup": best_single / best_fused,
        "bit_identical": bool(bit_identical),
        "instructions": fused.n_instructions,
    }


def time_capture_prefill(mesh_shape, backend, *,
                         chunk: int = CAPTURE_V2_CHUNK,
                         batch: int = CAPTURE_BATCH, reps: int = 8,
                         seed: int = 0) -> dict:
    """Eager prefill chunk vs captured-chunk replay, same cache offset.

    The program is captured on one chunk, then a *different* same-shape
    chunk is run both ways from the same cache base: eager and replay
    append the same positions, so the work is identical and the replayed
    logits and cache contents must match eagerly computed ones bit for
    bit (asserted here).
    """
    from repro.mesh.capture import capture_prefill_chunk

    model, caches, _ = _build(mesh_shape, backend, batch,
                              4 + 3 * chunk, seed)
    rng = np.random.default_rng(seed + 2)
    vocab = decode_config().vocab_size
    chunk1 = rng.integers(0, vocab, size=(batch, chunk))
    chunk2 = rng.integers(0, vocab, size=(batch, chunk))
    _, program = capture_prefill_chunk(model, chunk1, caches)
    if program is None:
        raise AssertionError(
            f"prefill chunk did not capture on {mesh_shape} {backend}")
    base = caches[0].length

    def reset():
        for cache in caches:
            cache.length = base

    eager_logits = model.forward(chunk2, caches)
    reset()
    replay_logits = program.replay(chunk2, caches)
    bit_identical = bool(np.array_equal(eager_logits, replay_logits))

    # Blocked per mode for the same reason as ``time_capture_fused``:
    # chunked prefill replays the same chunk program consecutively, so
    # each mode is timed in its steady state, alternating block rounds
    # to absorb machine drift.
    best_eager = best_replay = float("inf")
    for _ in range(3):
        reset()
        model.forward(chunk2, caches)
        for _ in range(reps):
            reset()
            start = time.perf_counter()
            model.forward(chunk2, caches)
            best_eager = min(best_eager, time.perf_counter() - start)
        reset()
        program.replay(chunk2, caches)
        for _ in range(reps):
            reset()
            start = time.perf_counter()
            program.replay(chunk2, caches)
            best_replay = min(best_replay, time.perf_counter() - start)
    reset()
    return {
        "mesh": "x".join(map(str, mesh_shape)),
        "chips": int(np.prod(mesh_shape)),
        "backend": backend,
        "chunk": chunk,
        "eager_s": best_eager,
        "replay_s": best_replay,
        "speedup": best_eager / best_replay,
        "bit_identical": bit_identical,
        "instructions": program.n_instructions,
    }


def capture_hit_rate(mesh_shape, backend, *, batch: int = CAPTURE_BATCH,
                     seed: int = 0) -> dict:
    """Program-cache hit rate on a shrinking continuous-batching run.

    Rows retire on a staggered schedule, so the live batch shrinks every
    few rounds; the compiler's batch bucketing pads the shrunken batch
    back to the cache capacity and one warm program keeps replaying.
    """
    from repro.mesh.capture import StepCompiler
    from repro.serving.continuous import sharded_decode_rounds

    budgets = [max(4, 18 - 2 * (i // 2)) for i in range(batch)]
    model, caches, prompt = _build(mesh_shape, backend, batch,
                                   4 + 2 + max(budgets), seed)
    compiler = StepCompiler(batch_bucket=batch)
    sharded_decode_rounds(model, compiler, prompt[:, -1], caches, budgets)
    stats = compiler.stats()
    return {
        "mesh": "x".join(map(str, mesh_shape)),
        "chips": int(np.prod(mesh_shape)),
        "backend": backend,
        "rounds": max(budgets),
        "distinct_batches": len(set(budgets)),
        "hits": stats["hits"],
        "misses": stats["misses"],
        "hit_rate": stats["hit_rate"],
        "programs": stats["programs"],
    }


#: Shapes the capture-v2 benchmark sweeps: the smallest multi-chip torus
#: plus the paper's 4x4x4 (where the acceptance gates apply).
CAPTURE_V2_SHAPES = ((2, 2, 2), (4, 4, 4))


def compare_capture_v2(mesh_shapes=CAPTURE_V2_SHAPES, *,
                       window: int = CAPTURE_V2_WINDOW,
                       chunk: int = CAPTURE_V2_CHUNK,
                       batch: int = CAPTURE_BATCH, reps: int = 8,
                       backends=BACKENDS) -> dict:
    """Fused / prefill / hit-rate sections, one row per (shape, backend)."""
    return {
        "fused": [time_capture_fused(shape, backend, window=window,
                                     batch=batch, reps=reps)
                  for shape in mesh_shapes for backend in backends],
        "prefill": [time_capture_prefill(shape, backend, chunk=chunk,
                                         batch=batch, reps=reps)
                    for shape in mesh_shapes for backend in backends],
        "hit_rate": [capture_hit_rate(shape, backend, batch=batch)
                     for shape in mesh_shapes for backend in backends],
    }


def format_capture_v2_table(sections: dict) -> str:
    lines = ["Fused decode: single-step replay vs fused window "
             "(seconds/step)",
             f"{'mesh':>7s} {'backend':>8s} {'w':>3s} {'replay1':>10s} "
             f"{'fused':>10s} {'speedup':>8s} {'bits':>5s}"]
    for row in sections["fused"]:
        lines.append(
            f"{row['mesh']:>7s} {row['backend']:>8s} {row['window']:>3d} "
            f"{row['replay1_s'] * 1e3:9.3f}m {row['fused_s'] * 1e3:9.3f}m "
            f"{row['speedup']:7.2f}x "
            f"{'ok' if row['bit_identical'] else 'FAIL':>5s}")
    lines += ["", "Prefill chunk: eager vs captured replay (seconds/chunk)",
              f"{'mesh':>7s} {'backend':>8s} {'len':>4s} {'eager':>10s} "
              f"{'replay':>10s} {'speedup':>8s} {'bits':>5s}"]
    for row in sections["prefill"]:
        lines.append(
            f"{row['mesh']:>7s} {row['backend']:>8s} {row['chunk']:>4d} "
            f"{row['eager_s'] * 1e3:9.2f}m {row['replay_s'] * 1e3:9.2f}m "
            f"{row['speedup']:7.2f}x "
            f"{'ok' if row['bit_identical'] else 'FAIL':>5s}")
    lines += ["", "Program-cache hit rate, shrinking continuous batch",
              f"{'mesh':>7s} {'backend':>8s} {'rounds':>7s} "
              f"{'batches':>8s} {'hits':>6s} {'misses':>7s} {'rate':>7s}"]
    for row in sections["hit_rate"]:
        lines.append(
            f"{row['mesh']:>7s} {row['backend']:>8s} {row['rounds']:>7d} "
            f"{row['distinct_batches']:>8d} {row['hits']:>6d} "
            f"{row['misses']:>7d} {row['hit_rate'] * 100:6.1f}%")
    return "\n".join(lines)


def format_capture_table(rows: list[dict]) -> str:
    lines = ["Decode step: eager vs captured replay (seconds/step)",
             f"{'mesh':>7s} {'chips':>6s} {'backend':>8s} {'eager':>10s} "
             f"{'replay':>10s} {'speedup':>8s} {'folded':>9s} {'bits':>5s}"]
    for row in rows:
        folded = (f"{row['collectives_folded']}/"
                  f"{row['collectives_folded'] + row['collectives_live']}")
        lines.append(
            f"{row['mesh']:>7s} {row['chips']:>6d} {row['backend']:>8s} "
            f"{row['eager_s'] * 1e3:9.2f}m {row['replay_s'] * 1e3:9.2f}m "
            f"{row['speedup']:7.2f}x {folded:>9s} "
            f"{'ok' if row['bit_identical'] else 'FAIL':>5s}")
    return "\n".join(lines)


def format_table(rows: list[dict]) -> str:
    lines = ["Decode step: loop vs stacked mesh backend (seconds/step)",
             f"{'mesh':>7s} {'chips':>6s} {'loop':>10s} {'stacked':>10s} "
             f"{'speedup':>8s}"]
    for row in rows:
        loop_s = row.get("loop_s")
        stacked_s = row.get("stacked_s")
        lines.append(
            f"{row['mesh']:>7s} {row['chips']:>6d} "
            + (f"{loop_s * 1e3:9.2f}m" if loop_s is not None
               else f"{'-':>10s}") + " "
            + (f"{stacked_s * 1e3:9.2f}m" if stacked_s is not None
               else f"{'-':>10s}") + " "
            + (f"{row['speedup']:7.1f}x" if "speedup" in row
               else f"{'-':>8s}"))
    return "\n".join(lines)
