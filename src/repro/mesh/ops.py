"""Functional collectives and sharded einsum on the virtual mesh.

These are the MPI-style primitives of Section 3.1 / Figure A.1, implemented
with real group-locality: every operation only combines shards from devices
that differ in the participating torus axes.  A program composed from these
ops is therefore implementable with exactly the communication pattern it
claims, and its numerics are verifiable against an unsharded reference.

Axis-ordering convention: a logical dim sharded over axes ``(a, b)`` is
sliced row-major with ``b`` innermost.  Gathering removes innermost axes
(so ``axes`` must be a *suffix* of the dim's axis list) and scattering
appends axes innermost.  The layout implementations in
:mod:`repro.layouts` are written against this convention.

Every op appends a :class:`CommRecord` to ``mesh.comm_log`` (if present),
with the per-chip payload size ``D`` used by the Appendix A.1 cost model —
this lets tests check the *measured* communication volume of a layout
against the paper's closed-form formulas.  When a tracer is installed
(:meth:`VirtualMesh.install_tracer`), every collective and sharded einsum
is additionally recorded as a structured :class:`repro.observability.Span`
with wall-clock timing and modeled cost; with no tracer the hook is a
single ``getattr`` per op.

Each collective has two implementations sharing one spec computation: the
per-group Python loop below (the semantics oracle) and the vectorized
stacked-shard kernels in :mod:`repro.mesh.stacked`, selected by the
operand's shard representation.  The two are bit-identical by contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.mesh import stacked as stacked_kernels
from repro.mesh.sharded_tensor import ShardedTensor
from repro.mesh.virtual_mesh import VirtualMesh
from repro.sharding.spec import ShardingError, ShardSpec


@dataclass(frozen=True)
class CommRecord:
    """One logged collective: op name, axes, group size, payload bytes.

    ``payload_bytes`` is the per-chip ``D`` of Appendix A.1: the per-chip
    *output* for an all-gather, the per-chip *input* for a reduce-scatter,
    and the per-chip buffer for an all-to-all.  Zero-cost resharding
    (``split``) is logged with zero payload.
    """

    op: str
    axes: tuple[str, ...]
    group_size: int
    payload_bytes: int


def _log(mesh: VirtualMesh, record: CommRecord) -> None:
    log = getattr(mesh, "comm_log", None)
    if log is not None:
        log.append(record)


def _trace_start(mesh: VirtualMesh):
    """Tracer hook entry: ``(tracer, start time)`` or ``(None, 0.0)``.

    Duck-typed like ``comm_log``/``fault_state`` so the mesh package never
    imports :mod:`repro.observability`; one ``getattr`` when tracing is
    off keeps the uninstrumented path unchanged.
    """
    tracer = getattr(mesh, "tracer", None)
    return tracer, (tracer.now() if tracer is not None else 0.0)


def _observe(mesh: VirtualMesh, tracer, start_s: float,
             record: CommRecord, out: ShardedTensor) -> None:
    """Log a finished collective to ``comm_log`` and (if installed) the
    tracer, as one span carrying the same Appendix A.1 payload."""
    _log(mesh, record)
    if tracer is not None:
        local = out.shards[0, 0, 0]
        itemsize = local.dtype.itemsize
        tracer.collective(record.op, record.axes, record.group_size,
                          record.payload_bytes,
                          elements=record.payload_bytes // itemsize,
                          start_s=start_s)


def _fault_pre(mesh: VirtualMesh, op: str, axes: tuple[str, ...]) -> None:
    """Fault-injection hook before a collective runs (both backends).

    Raises the typed failures of :mod:`repro.mesh.faults` — a collective
    touching a dead chip or a scheduled timeout never silently returns
    garbage.  No-op unless a fault plan is installed on the mesh.
    """
    state = getattr(mesh, "fault_state", None)
    if state is not None:
        state.on_collective(op, axes)


def _fault_post(mesh: VirtualMesh, op: str, axes: tuple[str, ...],
                shards: np.ndarray) -> np.ndarray:
    """Fault-injection hook on a collective's result shards (both
    backends): applies scheduled payload corruption and raises
    ``CollectiveCorruption`` when checksum detection is on."""
    state = getattr(mesh, "fault_state", None)
    if state is None:
        return shards
    return state.post_collective(op, axes, shards)


def _capture(mesh: VirtualMesh, fn, inputs: tuple, output,
             label: str, *, collective: bool = True,
             arena: bool = False, meta: tuple | None = None) -> None:
    """Capture-recorder hook (duck-typed like ``tracer``/``fault_state``).

    With a :class:`repro.mesh.capture.StepRecorder` installed as
    ``mesh.capture``, records ``fn`` — a closure over the already
    resolved kernel and its parameters — as one replay instruction
    mapping the input shard arrays to the output shard array.  One
    ``getattr`` when capture is off.  ``meta`` optionally carries the
    resolved op parameters for the tape optimizer.
    """
    recorder = getattr(mesh, "capture", None)
    if recorder is not None:
        recorder.record(fn, inputs, output, label, collective=collective,
                        arena=arena, meta=meta)


def _require_suffix(dim_axes: tuple[str, ...], axes: Sequence[str],
                    what: str) -> tuple[str, ...]:
    axes = tuple(axes)
    if not axes:
        raise ShardingError(f"{what}: empty axes")
    if dim_axes[len(dim_axes) - len(axes):] != axes:
        raise ShardingError(
            f"{what}: axes {axes} must be the innermost (suffix) axes of "
            f"the dim's sharding {dim_axes}")
    return dim_axes[:len(dim_axes) - len(axes)]


# ---------------------------------------------------------------------------
# Per-group loop kernels (the semantics oracle)
#
# Extracted to module level so a captured program can replay them directly:
# each takes the raw shards and the already-resolved group parameters, like
# its vectorized twin in :mod:`repro.mesh.stacked`.
# ---------------------------------------------------------------------------

def _loop_all_gather(mesh: VirtualMesh, shards_in: np.ndarray,
                     axes: tuple[str, ...], dim_idx: int) -> np.ndarray:
    shards = mesh.empty_shards()
    for group in mesh.groups(axes):
        gathered = np.concatenate([shards_in[c] for c in group],
                                  axis=dim_idx)
        for coord in group:
            shards[coord] = gathered
    return shards


def _loop_reduce_scatter(mesh: VirtualMesh, shards_in: np.ndarray,
                         axes: tuple[str, ...], dim_idx: int,
                         k: int) -> np.ndarray:
    shards = mesh.empty_shards()
    for group in mesh.groups(axes):
        total = shards_in[group[0]]
        for coord in group[1:]:
            total = total + shards_in[coord]
        chunks = np.split(total, k, axis=dim_idx)
        for rank, coord in enumerate(group):
            shards[coord] = np.ascontiguousarray(chunks[rank])
    return shards


def _loop_all_reduce(mesh: VirtualMesh, shards_in: np.ndarray,
                     axes: tuple[str, ...]) -> np.ndarray:
    shards = mesh.empty_shards()
    for group in mesh.groups(axes):
        total = shards_in[group[0]]
        for coord in group[1:]:
            total = total + shards_in[coord]
        for coord in group:
            shards[coord] = total
    return shards


def _loop_all_to_all(mesh: VirtualMesh, shards_in: np.ndarray,
                     axes: tuple[str, ...], src_idx: int, dst_idx: int,
                     k: int) -> np.ndarray:
    shards = mesh.empty_shards()
    for group in mesh.groups(axes):
        # Assemble the group-local view along src_dim, then re-slice
        # dst_dim.
        assembled = np.concatenate([shards_in[c] for c in group],
                                   axis=src_idx)
        chunks = np.split(assembled, k, axis=dst_idx)
        for rank, coord in enumerate(group):
            shards[coord] = np.ascontiguousarray(chunks[rank])
    return shards


def _loop_split(mesh: VirtualMesh, shards_in: np.ndarray,
                axes: tuple[str, ...], dim_idx: int, k: int) -> np.ndarray:
    shards = mesh.empty_shards()
    for group in mesh.groups(axes):
        for rank, coord in enumerate(group):
            # Each device keeps its own slice of its own replica.
            local_chunks = np.split(shards_in[coord], k, axis=dim_idx)
            shards[coord] = np.ascontiguousarray(local_chunks[rank])
    return shards


def all_gather(t: ShardedTensor, axes: Sequence[str], dim: str
               ) -> ShardedTensor:
    """All-gather ``dim`` over ``axes``: removes those axes from its sharding.

    Every device in a group ends up with the concatenation of the group's
    shards, replicated over the gathered axes.
    """
    axes = tuple(axes)
    mesh, spec = t.mesh, t.spec
    tracer, start = _trace_start(mesh)
    _fault_pre(mesh, "all_gather", axes)
    remaining = _require_suffix(spec.axes_for(dim), axes, "all_gather")
    dim_idx = spec.dim_index(dim)
    new_spec = spec.with_dim_axes(dim, remaining)
    kernel = stacked_kernels.all_gather if t.is_stacked else _loop_all_gather
    shards = kernel(mesh, t.shards, axes, dim_idx)
    shards = _fault_post(mesh, "all_gather", axes, shards)
    out = ShardedTensor(mesh, new_spec, t.global_shape, shards)
    _observe(mesh, tracer, start,
             CommRecord("all_gather", axes, mesh.group_size(axes),
                        out.per_chip_bytes), out)
    _capture(mesh, lambda s: kernel(mesh, s, axes, dim_idx),
             (t.shards,), out.shards, "all_gather",
             meta=("all_gather", axes, dim_idx) if t.is_stacked else None)
    return out


def reduce_scatter(t: ShardedTensor, axes: Sequence[str], dim: str
                   ) -> ShardedTensor:
    """Sum partial sums over ``axes`` and scatter the result into ``dim``."""
    axes = tuple(axes)
    mesh, spec = t.mesh, t.spec
    tracer, start = _trace_start(mesh)
    _fault_pre(mesh, "reduce_scatter", axes)
    if not set(axes) <= set(spec.partial_sum):
        raise ShardingError(
            f"reduce_scatter axes {axes} not all partial-sum axes of {spec}")
    dim_idx = spec.dim_index(dim)
    new_partial = tuple(a for a in spec.partial_sum if a not in axes)
    new_spec = spec.with_partial_sum(new_partial).with_dim_axes(
        dim, spec.axes_for(dim) + axes)
    k = mesh.group_size(axes)
    payload = t.per_chip_bytes
    if t.is_stacked:
        shards = stacked_kernels.reduce_scatter(mesh, t.shards, axes,
                                                dim_idx)
        replay = lambda s: stacked_kernels.reduce_scatter(  # noqa: E731
            mesh, s, axes, dim_idx)
    else:
        shards = _loop_reduce_scatter(mesh, t.shards, axes, dim_idx, k)
        replay = lambda s: _loop_reduce_scatter(  # noqa: E731
            mesh, s, axes, dim_idx, k)
    shards = _fault_post(mesh, "reduce_scatter", axes, shards)
    out = ShardedTensor(mesh, new_spec, t.global_shape, shards)
    _observe(mesh, tracer, start,
             CommRecord("reduce_scatter", axes, k, payload), out)
    _capture(mesh, replay, (t.shards,), out.shards, "reduce_scatter",
             meta=("reduce_scatter", axes, dim_idx) if t.is_stacked
             else None)
    return out


def all_reduce(t: ShardedTensor, axes: Sequence[str]) -> ShardedTensor:
    """Sum partial sums over ``axes``, replicating the result.

    Equivalent to ``all_gather(reduce_scatter(t, axes, d), axes, d)`` for
    any dim ``d`` divisible by the group size (Section 3.1); tests assert
    this equivalence.
    """
    axes = tuple(axes)
    mesh, spec = t.mesh, t.spec
    tracer, start = _trace_start(mesh)
    _fault_pre(mesh, "all_reduce", axes)
    if not set(axes) <= set(spec.partial_sum):
        raise ShardingError(
            f"all_reduce axes {axes} not all partial-sum axes of {spec}")
    new_partial = tuple(a for a in spec.partial_sum if a not in axes)
    new_spec = spec.with_partial_sum(new_partial)
    payload = t.per_chip_bytes
    kernel = stacked_kernels.all_reduce if t.is_stacked else _loop_all_reduce
    shards = kernel(mesh, t.shards, axes)
    shards = _fault_post(mesh, "all_reduce", axes, shards)
    out = ShardedTensor(mesh, new_spec, t.global_shape, shards)
    _observe(mesh, tracer, start,
             CommRecord("all_reduce", axes, mesh.group_size(axes),
                        2 * payload), out)
    _capture(mesh, lambda s: kernel(mesh, s, axes), (t.shards,),
             out.shards, "all_reduce",
             meta=("all_reduce", axes) if t.is_stacked else None)
    return out


def all_to_all(t: ShardedTensor, axes: Sequence[str], src_dim: str,
               dst_dim: str) -> ShardedTensor:
    """Move sharding of ``axes`` from ``src_dim`` to ``dst_dim``.

    E.g. ``BLH_x Q -> B_x L H Q`` (Section 3.1): each (source, destination)
    pair in a group exchanges one block directly.
    """
    axes = tuple(axes)
    mesh, spec = t.mesh, t.spec
    tracer, start = _trace_start(mesh)
    _fault_pre(mesh, "all_to_all", axes)
    if src_dim == dst_dim:
        raise ShardingError("all_to_all src_dim and dst_dim must differ")
    src_remaining = _require_suffix(spec.axes_for(src_dim), axes,
                                    "all_to_all")
    src_idx = spec.dim_index(src_dim)
    dst_idx = spec.dim_index(dst_dim)
    new_spec = spec.with_dim_axes(src_dim, src_remaining).with_dim_axes(
        dst_dim, spec.axes_for(dst_dim) + axes)
    k = mesh.group_size(axes)
    payload = t.per_chip_bytes
    if t.is_stacked:
        shards = stacked_kernels.all_to_all(mesh, t.shards, axes, src_idx,
                                            dst_idx)
        replay = lambda s: stacked_kernels.all_to_all(  # noqa: E731
            mesh, s, axes, src_idx, dst_idx)
    else:
        shards = _loop_all_to_all(mesh, t.shards, axes, src_idx, dst_idx, k)
        replay = lambda s: _loop_all_to_all(  # noqa: E731
            mesh, s, axes, src_idx, dst_idx, k)
    shards = _fault_post(mesh, "all_to_all", axes, shards)
    out = ShardedTensor(mesh, new_spec, t.global_shape, shards)
    _observe(mesh, tracer, start,
             CommRecord("all_to_all", axes, k, payload), out)
    _capture(mesh, replay, (t.shards,), out.shards, "all_to_all")
    return out


def split(t: ShardedTensor, axes: Sequence[str], dim: str) -> ShardedTensor:
    """Reshard a replicated tensor by splitting ``dim`` over unused ``axes``.

    This is communication-free: each device simply keeps its slice of data
    it already holds.  Used, e.g., to shard fresh K/V tensors over batch
    along axes they were replicated on (Section 3.3).
    """
    axes = tuple(axes)
    mesh, spec = t.mesh, t.spec
    tracer, start = _trace_start(mesh)
    _fault_pre(mesh, "split", axes)
    used = set(spec.mesh_axes_used)
    if used & set(axes):
        raise ShardingError(
            f"split axes {axes} overlap axes already used by {spec}")
    dim_idx = spec.dim_index(dim)
    new_spec = spec.with_dim_axes(dim, spec.axes_for(dim) + axes)
    k = mesh.group_size(axes)
    if t.is_stacked:
        shards = stacked_kernels.split(mesh, t.shards, axes, dim_idx)
        replay = lambda s: stacked_kernels.split(  # noqa: E731
            mesh, s, axes, dim_idx)
    else:
        shards = _loop_split(mesh, t.shards, axes, dim_idx, k)
        replay = lambda s: _loop_split(mesh, s, axes, dim_idx, k)  # noqa: E731
    out = ShardedTensor(mesh, new_spec, t.global_shape, shards)
    _observe(mesh, tracer, start, CommRecord("split", axes, k, 0), out)
    _capture(mesh, replay, (t.shards,), out.shards, "split")
    return out


# ---------------------------------------------------------------------------
# Sharded einsum
# ---------------------------------------------------------------------------

@lru_cache(maxsize=None)
def _parse_subscripts(subscripts: str) -> tuple[str, str, str]:
    try:
        inputs, output = subscripts.replace(" ", "").split("->")
        lhs, rhs = inputs.split(",")
    except ValueError:
        raise ShardingError(
            f"einsum subscripts must look like 'ble,ef->blf', got "
            f"{subscripts!r}") from None
    return lhs, rhs, output


def einsum_output_layout(subscripts: str, a: ShardedTensor,
                         b: ShardedTensor
                         ) -> tuple[ShardSpec, tuple[int, ...]]:
    """Shape/sharding inference of :func:`sharded_einsum`, without compute.

    Returns the output ``(spec, global_shape)``; used by the looped
    (fused) einsum variants, which build their outputs incrementally.
    The inference itself is a pure function of the subscripts, operand
    specs and global shapes, so it is memoized — an einsum deep inside a
    decode loop repeats the same handful of layouts every step.
    """
    if a.mesh is not b.mesh:
        raise ShardingError("operands live on different meshes")
    return _infer_einsum_layout(subscripts, a.spec, a.global_shape,
                                b.spec, b.global_shape)


@lru_cache(maxsize=None)
def _infer_einsum_layout(subscripts: str, a_spec: ShardSpec,
                         a_shape: tuple[int, ...], b_spec: ShardSpec,
                         b_shape: tuple[int, ...]
                         ) -> tuple[ShardSpec, tuple[int, ...]]:
    lhs, rhs, out_letters = _parse_subscripts(subscripts)
    for letters, spec, side in ((lhs, a_spec, "lhs"), (rhs, b_spec, "rhs")):
        expected = "".join(spec.dims).lower()
        if letters != expected:
            raise ShardingError(
                f"{side} subscripts {letters!r} do not match spec dims "
                f"{spec.dims} (expected {expected!r})")

    def info(letter: str) -> tuple[int, tuple[str, ...]]:
        """(global size, sharding axes) for a letter, checking agreement."""
        results = []
        for letters, spec, shape in ((lhs, a_spec, a_shape),
                                     (rhs, b_spec, b_shape)):
            if letter in letters:
                i = letters.index(letter)
                results.append((shape[i], spec.axes[i]))
        if len(results) == 2 and results[0] != results[1]:
            raise ShardingError(
                f"dim {letter!r} mismatch between operands: "
                f"{results[0]} vs {results[1]}")
        return results[0]

    # Safety for carried partial sums.
    for spec, other_spec in ((a_spec, b_spec), (b_spec, a_spec)):
        for axis in spec.partial_sum:
            if axis in other_spec.mesh_axes_used:
                raise ShardingError(
                    f"partial-sum axis {axis!r} of one operand is used by "
                    f"the other operand; result would be incorrect")

    contracted = sorted(set(lhs + rhs) - set(out_letters))
    partial: list[str] = list(a_spec.partial_sum) + list(b_spec.partial_sum)
    for letter in contracted:
        _, axes = info(letter)
        partial.extend(axes)

    out_dims = []
    out_axes = []
    out_shape = []
    for letter in out_letters:
        size, axes = info(letter)
        out_shape.append(size)
        out_axes.append(axes)
        # Recover the original (uppercase) dim name from whichever operand.
        src_spec = a_spec if letter in lhs else b_spec
        src_letters = lhs if letter in lhs else rhs
        out_dims.append(src_spec.dims[src_letters.index(letter)])
    try:
        out_spec = ShardSpec(tuple(out_dims), tuple(out_axes),
                             tuple(partial))
    except ShardingError as exc:
        raise ShardingError(
            f"einsum {subscripts!r} on {a_spec} x {b_spec} produces an "
            f"inconsistent output sharding: {exc}") from exc
    return out_spec, tuple(out_shape)


def sharded_einsum(subscripts: str, a: ShardedTensor, b: ShardedTensor
                   ) -> ShardedTensor:
    """Per-device einsum with automatic output sharding inference.

    Subscript letters must be the lowercased dim names of the operands
    (e.g. a ``BLE`` tensor uses letters ``ble``).  Rules:

    * A dim appearing in both operands (contracted or batch) must be
      sharded identically in both.
    * Contracted dims' mesh axes become partial-sum axes of the output
      (each device contracts only its slice).
    * An operand may carry partial-sum axes only if the other operand does
      not touch those axes at all (linearity makes this safe); they carry
      through to the output.
    """
    out_spec, out_shape = einsum_output_layout(subscripts, a, b)
    mesh = a.mesh
    tracer, start = _trace_start(mesh)
    if a.is_stacked and b.is_stacked:
        lhs, rhs, out_letters = _parse_subscripts(subscripts)
        shards = stacked_kernels.batched_einsum(mesh, lhs, rhs, out_letters,
                                                a.shards, b.shards)
        replay = lambda x, y, out=None: stacked_kernels.batched_einsum(  # noqa: E731
            mesh, lhs, rhs, out_letters, x, y, out=out)
        arena = True
    else:
        shards = mesh.map_devices(
            lambda c: np.einsum(subscripts, a.shards[c], b.shards[c]))
        replay = lambda x, y: mesh.map_devices(  # noqa: E731
            lambda c: np.einsum(subscripts, x[c], y[c]))
        arena = False
    out = ShardedTensor(mesh, out_spec, out_shape, shards)
    if tracer is not None:
        tracer.compute(subscripts, flops=_einsum_local_flops(subscripts, a, b),
                       elements=int(out.shards[0, 0, 0].size), start_s=start)
    _capture(mesh, replay, (a.shards, b.shards), out.shards,
             f"einsum:{subscripts}", collective=False, arena=arena,
             meta=("einsum",) + _parse_subscripts(subscripts)
             if a.is_stacked and b.is_stacked else None)
    return out


def _einsum_local_flops(subscripts: str, a: ShardedTensor,
                        b: ShardedTensor) -> float:
    """Per-chip FLOPs of a sharded einsum: 2 x the product of every
    distinct letter's *local* extent (multiply + add per MAC)."""
    lhs, rhs, _ = _parse_subscripts(subscripts)
    sizes: dict[str, int] = {}
    for letters, operand in ((lhs, a), (rhs, b)):
        for letter, size in zip(letters, operand.local_shape):
            sizes[letter] = size
    flops = 2.0
    for size in sizes.values():
        flops *= size
    return flops
