"""A virtual mesh of numpy "chips".

This is the execution substrate that stands in for an XLA/GSPMD TPU slice:
a 3D grid of devices, each holding numpy shards.  All data movement happens
through the collective operations in :mod:`repro.mesh.ops`, which only move
data *within groups along the participating torus axes* — so a program that
runs on the virtual mesh is implementable with exactly the communication
pattern it claims.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.hardware.topology import AXIS_NAMES, Mesh


class VirtualMesh:
    """A 3D grid of virtual devices with named axes ``x``, ``y``, ``z``."""

    def __init__(self, shape: Sequence[int]):
        self.topology = Mesh.from_shape(tuple(shape))

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.topology.shape

    @property
    def num_chips(self) -> int:
        return self.topology.num_chips

    @property
    def axis_names(self) -> tuple[str, str, str]:
        return AXIS_NAMES

    def axis_size(self, axis: str) -> int:
        return self.topology.axis_size(axis)

    def group_size(self, axes: Sequence[str]) -> int:
        return self.topology.group_size(axes)

    def devices(self) -> Iterator[tuple[int, int, int]]:
        return self.topology.devices()

    def axis_indices(self, axes: Sequence[str]) -> tuple[int, ...]:
        return tuple(AXIS_NAMES.index(a) for a in axes)

    def empty_shards(self) -> np.ndarray:
        """An uninitialized object array with one slot per device."""
        return np.empty(self.shape, dtype=object)

    def groups(self, axes: Sequence[str]
               ) -> Iterator[list[tuple[int, int, int]]]:
        """Iterate communication groups for a collective over ``axes``.

        Each group is the list of device coordinates that differ only in the
        given axes; coordinates within a group are ordered row-major over
        ``axes`` (in the order given), which defines shard order for
        gather/scatter semantics.
        """
        part = self.axis_indices(axes)
        rest = [i for i in range(3) if i not in part]
        rest_ranges = [range(self.shape[i]) for i in rest]
        part_ranges = [range(self.shape[i]) for i in part]
        for rest_coords in itertools.product(*rest_ranges):
            group = []
            for part_coords in itertools.product(*part_ranges):
                coord = [0, 0, 0]
                for i, c in zip(rest, rest_coords):
                    coord[i] = c
                for i, c in zip(part, part_coords):
                    coord[i] = c
                group.append(tuple(coord))
            yield group

    def coords_on(self, device: tuple[int, int, int],
                  axes: Sequence[str]) -> tuple[int, ...]:
        """Project a device coordinate onto the given axes."""
        return tuple(device[i] for i in self.axis_indices(axes))

    def rank_in_group(self, device: tuple[int, int, int],
                      axes: Sequence[str]) -> int:
        """Row-major rank of a device within its group along ``axes``."""
        rank = 0
        for axis, coord in zip(axes, self.coords_on(device, axes)):
            rank = rank * self.axis_size(axis) + coord
        return rank

    def map_devices(self, fn: Callable[[tuple[int, int, int]], np.ndarray]
                    ) -> np.ndarray:
        """Build an object array by calling ``fn`` per device coordinate."""
        shards = self.empty_shards()
        for coord in self.devices():
            shards[coord] = fn(coord)
        return shards

    def __repr__(self) -> str:
        return f"VirtualMesh({self.shape[0]}x{self.shape[1]}x{self.shape[2]})"
