"""A virtual mesh of numpy "chips".

This is the execution substrate that stands in for an XLA/GSPMD TPU slice:
a 3D grid of devices, each holding numpy shards.  All data movement happens
through the collective operations in :mod:`repro.mesh.ops`, which only move
data *within groups along the participating torus axes* — so a program that
runs on the virtual mesh is implementable with exactly the communication
pattern it claims.

Two execution backends share the same semantics:

* ``"loop"`` — one numpy array per device in an object array; collectives
  iterate Python loops over communication groups.  Simple, and the
  semantics oracle for the differential tests.
* ``"stacked"`` — all shards live in one dense array with the three device
  axes leading, and collectives become single whole-mesh numpy ops (see
  :mod:`repro.mesh.stacked`).  Bit-identical to ``"loop"`` and far faster
  on large meshes, because per-device work is batched instead of
  interpreted.

The backend is chosen per mesh: ``VirtualMesh(shape, backend="stacked")``,
with the ``REPRO_MESH_BACKEND`` environment variable as the default.
``backend="auto"`` resolves by mesh size: the stacked backend's dense
whole-mesh ops only pay off once there are enough devices to amortize
them (``BENCH_mesh_backend.json`` measures 0.88x/0.96x on 1x1x1/1x1x2 —
below ``loop`` — versus >= 5x from 8 chips up), so ``auto`` picks
``loop`` below :data:`AUTO_BACKEND_MIN_CHIPS` chips and ``stacked`` at or
above.  A concrete ``REPRO_MESH_BACKEND`` value overrides the heuristic.
"""

from __future__ import annotations

import itertools
import os
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.hardware.topology import AXIS_NAMES, Mesh

BACKENDS = ("loop", "stacked")
BACKEND_CHOICES = BACKENDS + ("auto",)

#: Below this many chips, ``backend="auto"`` picks the loop backend: the
#: measured crossover in BENCH_mesh_backend.json (stacked is 0.88x/0.96x
#: of loop at 1-2 chips, >= 2x from 4 chips up).
AUTO_BACKEND_MIN_CHIPS = 4


def default_backend() -> str:
    """The backend used when ``VirtualMesh`` is built without one.

    Controlled by the ``REPRO_MESH_BACKEND`` environment variable so whole
    test suites / benchmarks can be flipped without touching call sites.
    ``auto`` is accepted and resolved per mesh by chip count.
    """
    backend = os.environ.get("REPRO_MESH_BACKEND", "loop")
    if backend not in BACKEND_CHOICES:
        raise ValueError(
            f"REPRO_MESH_BACKEND={backend!r} is not one of "
            f"{BACKEND_CHOICES}")
    return backend


def resolve_backend(backend: str, num_chips: int) -> str:
    """Resolve ``"auto"`` to a concrete backend for a mesh of this size.

    A concrete ``REPRO_MESH_BACKEND`` value wins over the size heuristic,
    so a whole run can still be pinned to one backend; otherwise small
    meshes (fewer than :data:`AUTO_BACKEND_MIN_CHIPS` chips) use ``loop``
    — where the dense whole-mesh ops measurably lose to per-device
    dispatch — and everything larger uses ``stacked``.
    """
    if backend != "auto":
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown mesh backend {backend!r}; choose one of "
                f"{BACKEND_CHOICES}")
        return backend
    env = os.environ.get("REPRO_MESH_BACKEND")
    if env and env != "auto":
        if env not in BACKENDS:
            raise ValueError(
                f"REPRO_MESH_BACKEND={env!r} is not one of {BACKENDS}")
        return env
    return "loop" if num_chips < AUTO_BACKEND_MIN_CHIPS else "stacked"


class VirtualMesh:
    """A 3D grid of virtual devices with named axes ``x``, ``y``, ``z``."""

    def __init__(self, shape: Sequence[int], backend: str | None = None):
        self.topology = Mesh.from_shape(tuple(shape))
        if backend is None:
            backend = default_backend()
        if backend not in BACKEND_CHOICES:
            raise ValueError(
                f"unknown mesh backend {backend!r}; choose one of "
                f"{BACKEND_CHOICES}")
        self.backend = resolve_backend(backend, self.topology.num_chips)
        # Group coordinate lists and rank grids are pure functions of
        # (shape, axes); they are re-used by every collective call, so
        # derive each once.
        self._groups_cache: dict[tuple[str, ...],
                                 list[list[tuple[int, int, int]]]] = {}
        self._rank_grid_cache: dict[tuple[str, ...], np.ndarray] = {}

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.topology.shape

    @property
    def num_chips(self) -> int:
        return self.topology.num_chips

    @property
    def axis_names(self) -> tuple[str, str, str]:
        return AXIS_NAMES

    def axis_size(self, axis: str) -> int:
        return self.topology.axis_size(axis)

    def group_size(self, axes: Sequence[str]) -> int:
        return self.topology.group_size(axes)

    def devices(self) -> Iterator[tuple[int, int, int]]:
        return self.topology.devices()

    def axis_indices(self, axes: Sequence[str]) -> tuple[int, ...]:
        return tuple(AXIS_NAMES.index(a) for a in axes)

    def empty_shards(self) -> np.ndarray:
        """An uninitialized object array with one slot per device."""
        return np.empty(self.shape, dtype=object)

    def groups(self, axes: Sequence[str]
               ) -> Iterator[list[tuple[int, int, int]]]:
        """Iterate communication groups for a collective over ``axes``.

        Each group is the list of device coordinates that differ only in the
        given axes; coordinates within a group are ordered row-major over
        ``axes`` (in the order given), which defines shard order for
        gather/scatter semantics.  Group lists are computed once per
        ``axes`` tuple and cached; callers must not mutate them.
        """
        axes = tuple(axes)
        cached = self._groups_cache.get(axes)
        if cached is None:
            cached = self._build_groups(axes)
            self._groups_cache[axes] = cached
        return iter(cached)

    def _build_groups(self, axes: tuple[str, ...]
                      ) -> list[list[tuple[int, int, int]]]:
        part = self.axis_indices(axes)
        rest = [i for i in range(3) if i not in part]
        rest_ranges = [range(self.shape[i]) for i in rest]
        part_ranges = [range(self.shape[i]) for i in part]
        groups = []
        for rest_coords in itertools.product(*rest_ranges):
            group = []
            for part_coords in itertools.product(*part_ranges):
                coord = [0, 0, 0]
                for i, c in zip(rest, rest_coords):
                    coord[i] = c
                for i, c in zip(part, part_coords):
                    coord[i] = c
                group.append(tuple(coord))
            groups.append(group)
        return groups

    def coords_on(self, device: tuple[int, int, int],
                  axes: Sequence[str]) -> tuple[int, ...]:
        """Project a device coordinate onto the given axes."""
        return tuple(device[i] for i in self.axis_indices(axes))

    def rank_in_group(self, device: tuple[int, int, int],
                      axes: Sequence[str]) -> int:
        """Row-major rank of a device within its group along ``axes``."""
        rank = 0
        for axis, coord in zip(axes, self.coords_on(device, axes)):
            rank = rank * self.axis_size(axis) + coord
        return rank

    def rank_grid(self, axes: Sequence[str]) -> np.ndarray:
        """Integer array over the device grid of each device's group rank.

        ``rank_grid(axes)[coord] == rank_in_group(coord, axes)``; used by
        the stacked backend to vectorize rank-dependent slicing.  Cached
        per axes tuple (ring einsums request the same grid every step).
        """
        axes = tuple(axes)
        cached = self._rank_grid_cache.get(axes)
        if cached is None:
            coords = np.indices(self.shape)
            rank = np.zeros(self.shape, dtype=np.intp)
            for axis in axes:
                idx = AXIS_NAMES.index(axis)
                rank = rank * self.shape[idx] + coords[idx]
            cached = rank
            self._rank_grid_cache[axes] = cached
        return cached

    def install_faults(self, plan, event_log=None):
        """Attach a :class:`~repro.mesh.faults.FaultPlan` to this mesh.

        From then on every collective in :mod:`repro.mesh.ops` consults
        the returned :class:`~repro.mesh.faults.FaultState` — dead chips
        and scheduled collective failures raise typed errors instead of
        silently returning garbage.  Works identically on both backends.
        """
        from repro.mesh.faults import install_fault_plan

        return install_fault_plan(self, plan, event_log)

    def install_tracer(self, chip=None, event_log=None):
        """Attach a :class:`~repro.observability.Tracer` to this mesh.

        From then on every collective and sharded einsum in
        :mod:`repro.mesh.ops` (and every ring step of the looped einsums)
        is recorded as a structured span with wall-clock timing and the
        Appendix A.1 modeled cost at ``chip``'s constants (default TPU
        v4).  Works identically on both backends; remove with
        :func:`repro.observability.remove_tracer`.
        """
        from repro.observability.spans import install_tracer

        if chip is None:
            from repro.hardware.chip import TPU_V4

            chip = TPU_V4
        return install_tracer(self, chip=chip, event_log=event_log)

    def map_devices(self, fn: Callable[[tuple[int, int, int]], np.ndarray]
                    ) -> np.ndarray:
        """Build an object array by calling ``fn`` per device coordinate."""
        shards = self.empty_shards()
        for coord in self.devices():
            shards[coord] = fn(coord)
        return shards

    def __repr__(self) -> str:
        return (f"VirtualMesh({self.shape[0]}x{self.shape[1]}x"
                f"{self.shape[2]}, backend={self.backend!r})")
