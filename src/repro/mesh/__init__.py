"""Virtual multi-chip execution substrate (stands in for XLA/GSPMD).

``VirtualMesh`` is a grid of numpy devices; ``ShardedTensor`` holds one
shard per device under a Section 3.1 sharding spec; :mod:`repro.mesh.ops`
provides the communication collectives.  ``mesh.comm_log`` (a plain list,
created by :func:`enable_comm_log`) records every collective's per-chip
payload for volume accounting.
"""

from repro.mesh.faults import (
    ChipFailure,
    ChipKill,
    CollectiveCorruption,
    CollectiveFault,
    CollectiveTimeout,
    FaultPlan,
    FaultState,
    MeshFault,
    StragglerFault,
    clear_faults,
    install_fault_plan,
)
from repro.mesh.looped import all_gather_einsum, einsum_reduce_scatter
from repro.mesh.ops import (
    CommRecord,
    einsum_output_layout,
    all_gather,
    all_reduce,
    all_to_all,
    reduce_scatter,
    sharded_einsum,
    split,
)
from repro.mesh.sharded_tensor import ShardedTensor
from repro.mesh.virtual_mesh import (
    AUTO_BACKEND_MIN_CHIPS,
    BACKEND_CHOICES,
    BACKENDS,
    VirtualMesh,
    default_backend,
    resolve_backend,
)


def enable_comm_log(mesh: VirtualMesh) -> list:
    """Attach (or return the existing) communication log to a mesh."""
    if not hasattr(mesh, "comm_log"):
        mesh.comm_log = []
    return mesh.comm_log


__all__ = [
    "AUTO_BACKEND_MIN_CHIPS",
    "BACKEND_CHOICES",
    "BACKENDS",
    "ChipFailure",
    "ChipKill",
    "CollectiveCorruption",
    "CollectiveFault",
    "CollectiveTimeout",
    "CommRecord",
    "FaultPlan",
    "FaultState",
    "MeshFault",
    "StragglerFault",
    "clear_faults",
    "default_backend",
    "install_fault_plan",
    "all_gather_einsum",
    "einsum_output_layout",
    "einsum_reduce_scatter",
    "ShardedTensor",
    "VirtualMesh",
    "all_gather",
    "all_reduce",
    "all_to_all",
    "enable_comm_log",
    "reduce_scatter",
    "resolve_backend",
    "sharded_einsum",
    "split",
]
