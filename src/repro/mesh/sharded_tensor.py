"""Sharded tensors on a :class:`~repro.mesh.virtual_mesh.VirtualMesh`.

A :class:`ShardedTensor` pairs a sharding spec (Section 3.1 notation) with
per-device numpy shards.  ``from_global``/``to_global`` define the
authoritative layout semantics; ``to_global`` additionally *verifies* that
replicated copies are identical, which catches layout-algebra bugs in the
partitioned model implementations.

Two shard representations are supported, chosen by the mesh backend:

* **loop** — an object array of one numpy array per device;
* **stacked** — one dense array of shape ``mesh.shape + local_shape``.

Indexing ``t.shards[coord]`` yields that device's shard in either case, so
per-device code works on both; the stacked form additionally lets the
collectives and einsums in :mod:`repro.mesh.stacked` run as single
whole-mesh numpy ops.  Mixed-representation arithmetic falls back to the
per-device path.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.mesh import stacked as stacked_kernels
from repro.mesh.virtual_mesh import VirtualMesh
from repro.sharding.spec import ShardingError, ShardSpec, parse


def _record(mesh, fn, inputs, output, label, *, arena: bool = False) -> None:
    """Capture-recorder hook (duck-typed; see :mod:`repro.mesh.capture`)."""
    recorder = getattr(mesh, "capture", None)
    if recorder is not None:
        recorder.record(fn, inputs, output, label, arena=arena)


def _loop_to_global(mesh: VirtualMesh, spec: ShardSpec,
                    global_shape: tuple[int, ...], shards_in: np.ndarray,
                    check_replication: bool) -> np.ndarray:
    """Loop-backend global reassembly (see :meth:`ShardedTensor.to_global`)."""
    local = spec.local_shape(global_shape, mesh.topology)
    # Representative shard (or running partial sum) per shard position.
    accum: dict[tuple, np.ndarray] = {}
    seen: dict[tuple, np.ndarray] = {}
    for coord in mesh.devices():
        pos = tuple(mesh.rank_in_group(coord, axes) for axes in spec.axes)
        psum_rank = mesh.rank_in_group(coord, spec.partial_sum)
        key = pos + (psum_rank,)
        shard = shards_in[coord]
        if key in seen:
            if check_replication and not np.array_equal(seen[key], shard,
                                                        equal_nan=True):
                raise ShardingError(
                    f"replicas disagree at shard position {pos} "
                    f"(partial-sum rank {psum_rank}) for spec {spec}")
            continue
        seen[key] = shard
        if pos in accum:
            accum[pos] = accum[pos] + shard
        else:
            accum[pos] = shard.copy()

    out = np.zeros(global_shape, dtype=next(iter(accum.values())).dtype)
    for pos, shard in accum.items():
        slices = tuple(slice(r * s, (r + 1) * s)
                       for r, s in zip(pos, local))
        out[slices] = shard
    return out


class ShardedTensor:
    """A logically global tensor stored as per-device shards."""

    def __init__(self, mesh: VirtualMesh, spec: ShardSpec,
                 global_shape: Sequence[int], shards: np.ndarray):
        spec.validate(mesh.topology)
        self.mesh = mesh
        self.spec = spec
        self.global_shape = tuple(global_shape)
        self.shards = shards
        expected = spec.local_shape(self.global_shape, mesh.topology)
        if shards.dtype != object:
            if shards.shape != mesh.shape + expected:
                raise ShardingError(
                    f"stacked shards have shape {shards.shape}, spec "
                    f"{spec} with global {self.global_shape} expects "
                    f"{mesh.shape + expected}")
            return
        for coord in mesh.devices():
            shard = shards[coord]
            if shard.shape != expected:
                raise ShardingError(
                    f"device {coord} shard has shape {shard.shape}, "
                    f"spec {spec} with global {self.global_shape} "
                    f"expects {expected}")

    @property
    def is_stacked(self) -> bool:
        """True if shards live in one dense array (device axes leading)."""
        return self.shards.dtype != object

    # -- construction -----------------------------------------------------

    @classmethod
    def from_global(cls, mesh: VirtualMesh, array: np.ndarray,
                    spec: ShardSpec | str) -> "ShardedTensor":
        """Shard a global array according to ``spec`` (no partial sums)."""
        if isinstance(spec, str):
            spec = parse(spec)
        if spec.partial_sum:
            raise ShardingError(
                "cannot construct a partial-sum tensor from a global array")
        local = spec.local_shape(array.shape, mesh.topology)

        if mesh.backend == "stacked":
            shards = stacked_kernels.from_global(mesh, array, spec, local)
            _record(mesh,
                    lambda g: stacked_kernels.from_global(mesh, g, spec,
                                                          local),
                    (array,), shards, f"from_global:{spec}")
            return cls(mesh, spec, array.shape, shards)

        def make_shards(global_array):
            def make(coord):
                slices = []
                for dim_idx, axes in enumerate(spec.axes):
                    rank = mesh.rank_in_group(coord, axes)
                    size = local[dim_idx]
                    slices.append(slice(rank * size, (rank + 1) * size))
                return np.ascontiguousarray(global_array[tuple(slices)])
            return mesh.map_devices(make)

        shards = make_shards(array)
        _record(mesh, make_shards, (array,), shards, f"from_global:{spec}")
        return cls(mesh, spec, array.shape, shards)

    @classmethod
    def replicated(cls, mesh: VirtualMesh, array: np.ndarray,
                   dims: str) -> "ShardedTensor":
        """Replicate a global array on every device."""
        return cls.from_global(mesh, array, ShardSpec.replicated(dims))

    # -- reassembly ---------------------------------------------------------

    def to_global(self, check_replication: bool = True) -> np.ndarray:
        """Reassemble the global array (summing partial sums).

        With ``check_replication=True`` (the default), raises if devices
        that should hold identical replicas disagree — the key consistency
        invariant of SPMD layouts.
        """
        mesh, spec = self.mesh, self.spec
        gshape = self.global_shape
        if self.is_stacked:
            out = stacked_kernels.to_global(mesh, spec, gshape, self.shards,
                                            check_replication)
            kernel = stacked_kernels.to_global
        else:
            out = _loop_to_global(mesh, spec, gshape, self.shards,
                                  check_replication)
            kernel = _loop_to_global
        # Replay skips the replication check: the captured step already
        # verified it, and replay reproduces the same bits by contract.
        _record(mesh, lambda s: kernel(mesh, spec, gshape, s, False),
                (self.shards,), out, f"to_global:{spec}")
        return out

    # -- elementwise / structural helpers ----------------------------------

    def map_shards(self, fn: Callable[[np.ndarray], np.ndarray],
                   spec: ShardSpec | None = None,
                   global_shape: Sequence[int] | None = None,
                   *, elementwise: bool = False) -> "ShardedTensor":
        """Apply a per-device function to every shard.

        ``fn`` must be shape-preserving unless a new ``spec``/
        ``global_shape`` describing the result is given.  Elementwise
        functions commute with sharding but not with partial sums; callers
        must not apply nonlinear ``fn`` to partial-sum tensors (asserted).

        With ``elementwise=True`` the caller additionally promises that
        ``fn`` broadcasts over arbitrary leading axes (true for anything
        acting pointwise or over trailing dims only); on the stacked
        backend this applies ``fn`` once to the whole dense array instead
        of once per device.
        """
        mesh = self.mesh
        if self.is_stacked:
            if elementwise:
                shards = fn(self.shards)
                replay = fn
            else:
                def replay(dense):
                    results = [fn(dense[coord]) for coord in mesh.devices()]
                    return np.stack(results).reshape(
                        mesh.shape + results[0].shape)
                shards = replay(self.shards)
        else:
            shards = mesh.map_devices(lambda c: fn(self.shards[c]))
            replay = lambda s: mesh.map_devices(  # noqa: E731
                lambda c: fn(s[c]))
        _record(mesh, replay, (self.shards,), shards, "map_shards")
        return ShardedTensor(mesh, spec or self.spec,
                             global_shape or self.global_shape, shards)

    def astype(self, dtype) -> "ShardedTensor":
        return self.map_shards(lambda s: s.astype(dtype), elementwise=True)

    def __add__(self, other: "ShardedTensor") -> "ShardedTensor":
        if not isinstance(other, ShardedTensor):
            return NotImplemented
        if self.spec != other.spec or self.global_shape != other.global_shape:
            raise ShardingError(
                f"cannot add tensors with specs {self.spec} vs {other.spec}")
        mesh = self.mesh
        if self.is_stacked and other.is_stacked:
            shards = self.shards + other.shards
            _record(mesh, lambda x, y, out=None: np.add(x, y, out=out),
                    (self.shards, other.shards), shards, "add", arena=True)
        else:
            shards = mesh.map_devices(
                lambda c: self.shards[c] + other.shards[c])
            _record(mesh,
                    lambda x, y: mesh.map_devices(lambda c: x[c] + y[c]),
                    (self.shards, other.shards), shards, "add")
        return ShardedTensor(mesh, self.spec, self.global_shape, shards)

    @property
    def local_shape(self) -> tuple[int, ...]:
        return self.spec.local_shape(self.global_shape, self.mesh.topology)

    @property
    def per_chip_bytes(self) -> int:
        """Bytes of one device's shard (used by cost accounting)."""
        first = self.shards[0, 0, 0]
        return int(first.nbytes)

    def dim_size(self, dim: str) -> int:
        return self.global_shape[self.spec.dim_index(dim)]

    def __repr__(self) -> str:
        return (f"ShardedTensor({self.spec}, global={self.global_shape}, "
                f"local={self.local_shape}, mesh={self.mesh.shape})")
