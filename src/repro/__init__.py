"""Reproduction of "Efficiently Scaling Transformer Inference"
(Pope et al., MLSYS 2023).

The package layers (see DESIGN.md for the full inventory):

* :mod:`repro.hardware` — TPU v4 / A100 chip constants, 3D torus slices.
* :mod:`repro.sharding` — the ``BLE_xyz`` partitioning notation.
* :mod:`repro.mesh` — a virtual multi-chip mesh with functional
  collectives (the XLA/GSPMD stand-in).
* :mod:`repro.model` — PaLM / MT-NLG configs and the reference numerics.
* :mod:`repro.layouts` — the partitioned Transformer executing every
  Section 3 layout on the virtual mesh, numerically verified.
* :mod:`repro.partitioning` — the analytical framework: layout plans,
  closed-form costs, the layout selector.
* :mod:`repro.perf` — latency/MFU/cost estimation and Pareto sweeps.
* :mod:`repro.quant` — int8 weight quantization.
* :mod:`repro.simulator` — per-chip discrete-event simulation with
  comm/compute overlap.
* :mod:`repro.serving` — the two-phase (prefill -> decode) serving recipe.
* :mod:`repro.baselines` — published FasterTransformer comparisons.

Quickstart::

    from repro import quickstart_estimate
    print(quickstart_estimate())
"""

from repro.hardware import TPU_V4, ChipSpec, Torus3D
from repro.layouts import ShardedTransformer
from repro.mesh import ShardedTensor, VirtualMesh
from repro.model import (
    MEGATRON_530B,
    PALM_540B,
    PALM_62B,
    PALM_8B,
    ModelConfig,
    ReferenceTransformer,
    get_model,
    init_weights,
)
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.partitioning.selector import Phase, SelectionContext, select_plan
from repro.perf import (
    EfficiencyModel,
    InferenceEstimator,
    pareto_frontier,
    sweep_decode,
    sweep_prefill,
)

__version__ = "0.1.0"


def quickstart_estimate() -> str:
    """A one-call demo: the paper's headline operating point.

    Estimates PaLM 540B int8 decode latency per token at batch 64 on 64
    TPU v4 chips with the paper's recommended layout (2D weight-stationary
    + batch-sharded multiquery attention).
    """
    from repro.model import PALM_540B_PADDED

    torus = Torus3D(4, 4, 4)
    plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
    estimator = InferenceEstimator(PALM_540B_PADDED, TPU_V4, torus,
                                   weight_dtype_bytes=1,
                                   mfu_params=PALM_540B.n_params)
    gen = estimator.generate_cost(plan, batch=64, context_before=2048,
                                  n_steps=64)
    return (f"PaLM 540B (int8) on 64 TPU v4, batch 64, context 2048: "
            f"{gen.latency_per_token_s * 1e3:.1f} ms/token "
            f"(paper: 28.5 ms/token)")


__all__ = [
    "AttentionLayoutKind",
    "ChipSpec",
    "EfficiencyModel",
    "FfnLayoutKind",
    "InferenceEstimator",
    "LayoutPlan",
    "MEGATRON_530B",
    "ModelConfig",
    "PALM_540B",
    "PALM_62B",
    "PALM_8B",
    "Phase",
    "ReferenceTransformer",
    "SelectionContext",
    "ShardedTensor",
    "ShardedTransformer",
    "TPU_V4",
    "Torus3D",
    "VirtualMesh",
    "get_model",
    "init_weights",
    "pareto_frontier",
    "quickstart_estimate",
    "select_plan",
    "sweep_decode",
    "sweep_prefill",
]
