"""MoE cost model: the conclusion's FLOPs-per-token claim, quantified.

Extends the Section 2 accounting to expert-parallel decoding:

* compute time follows *active* parameters (top-k experts per token);
* per-chip weight memory follows *stored* parameters divided by the
  expert-parallel degree (experts shard like d_ff);
* dispatch adds one all-to-all pair per layer on token activations
  (tokens travel to their experts' chips and back), sized by a capacity
  factor.

The punchline function :func:`moe_vs_dense_decode` compares a sparse
layer against the dense layer with the same *stored* parameters — the
"same memory, fewer FLOPs" trade the paper hopes for — on a given chip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.cost import all_to_all_time
from repro.hardware.chip import ChipSpec
from repro.hardware.topology import Torus3D
from repro.moe.config import MoeSpec
from repro.perf.efficiency import EfficiencyModel


@dataclass(frozen=True)
class MoeLayerCost:
    """Per-layer decode-step cost breakdown for one MoE FFN."""

    compute_s: float
    weight_load_s: float
    dispatch_s: float

    @property
    def step_s(self) -> float:
        return max(self.compute_s, self.weight_load_s) + self.dispatch_s


def moe_layer_decode_cost(spec: MoeSpec, chip: ChipSpec, torus: Torus3D,
                          batch: int, *, weight_dtype_bytes: int = 2,
                          act_dtype_bytes: int = 2,
                          capacity_factor: float = 1.0,
                          efficiency: EfficiencyModel | None = None
                          ) -> MoeLayerCost:
    """One decode step through one expert-parallel MoE layer."""
    eff = efficiency or EfficiencyModel()
    n = torus.num_chips
    flops = spec.flops_per_token * batch
    compute_s = flops / (n * chip.peak_flops
                         * eff.matmul_efficiency(max(batch, 1)))
    weight_bytes = spec.total_params * weight_dtype_bytes / n
    weight_load_s = weight_bytes / (chip.hbm_bandwidth
                                    * eff.hbm_efficiency)
    # Dispatch + combine: each routed copy of each token crosses chips.
    routed_tokens = batch * spec.experts_per_token * capacity_factor
    per_chip_bytes = routed_tokens * spec.d_model * act_dtype_bytes / n
    bandwidth = chip.interconnect_bandwidth * eff.network_efficiency
    dispatch_s = 2 * all_to_all_time(per_chip_bytes, n, bandwidth)
    return MoeLayerCost(compute_s=compute_s, weight_load_s=weight_load_s,
                        dispatch_s=dispatch_s)


def dense_layer_decode_cost(d_model: int, d_ff: int, ffn_matrices: int,
                            chip: ChipSpec, torus: Torus3D, batch: int, *,
                            weight_dtype_bytes: int = 2,
                            efficiency: EfficiencyModel | None = None
                            ) -> MoeLayerCost:
    """The dense FFN counterpart (no routing, no dispatch)."""
    eff = efficiency or EfficiencyModel()
    n = torus.num_chips
    params = ffn_matrices * d_model * d_ff
    compute_s = (2.0 * params * batch
                 / (n * chip.peak_flops
                    * eff.matmul_efficiency(max(batch, 1))))
    weight_load_s = (params * weight_dtype_bytes / n
                     / (chip.hbm_bandwidth * eff.hbm_efficiency))
    return MoeLayerCost(compute_s=compute_s, weight_load_s=weight_load_s,
                        dispatch_s=0.0)


@dataclass(frozen=True)
class MoeComparison:
    moe: MoeLayerCost
    dense: MoeLayerCost
    flops_reduction: float    # dense FLOPs / MoE FLOPs per token
    speedup: float            # dense step time / MoE step time


def moe_vs_dense_decode(spec: MoeSpec, chip: ChipSpec, torus: Torus3D,
                        batch: int, **kwargs) -> MoeComparison:
    """Sparse layer vs. the iso-*stored*-parameter dense layer."""
    moe = moe_layer_decode_cost(spec, chip, torus, batch, **kwargs)
    dense = dense_layer_decode_cost(
        spec.d_model, spec.dense_equivalent_d_ff(), spec.ffn_matrices,
        chip, torus, batch,
        weight_dtype_bytes=kwargs.get("weight_dtype_bytes", 2),
        efficiency=kwargs.get("efficiency"))
    dense_flops = 2.0 * spec.ffn_matrices * spec.d_model \
        * spec.dense_equivalent_d_ff()
    return MoeComparison(
        moe=moe, dense=dense,
        flops_reduction=dense_flops / spec.flops_per_token,
        speedup=dense.step_s / moe.step_s)
