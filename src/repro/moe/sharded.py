"""Expert-parallel MoE execution on the virtual mesh.

Experts are sharded over torus axes (expert parallelism, GShard-style):
each chip stores ``n_experts / K`` experts' weights, computes its local
experts' gated outputs for the tokens it sees, and the per-chip results
are partial sums over the expert axes — resolved by the same
reduce-scatter / all-reduce machinery as every other layout in this
library.  (Production systems dispatch tokens with an all-to-all instead
of evaluating densely; the numerics are identical, which is the point of
this executor — the dispatch cost is modeled in :mod:`repro.moe.costs`.)
"""

from __future__ import annotations

import numpy as np

from repro.mesh.ops import all_reduce
from repro.mesh.sharded_tensor import ShardedTensor
from repro.mesh.virtual_mesh import VirtualMesh
from repro.model.config import FfnKind
from repro.model.functional import softmax, swish
from repro.moe.config import MoeSpec
from repro.moe.layer import MoeWeights
from repro.sharding.spec import ShardingError, parse


class ShardedMoeLayer:
    """An expert-sharded MoE feedforward layer."""

    def __init__(self, weights: MoeWeights, mesh: VirtualMesh,
                 expert_axes: tuple[str, ...] = ("y", "z")):
        spec = weights.spec
        k = mesh.group_size(expert_axes)
        if spec.n_experts % k:
            raise ShardingError(
                f"{spec.n_experts} experts not divisible over "
                f"{k} chips (axes {expert_axes})")
        self.spec = spec
        self.mesh = mesh
        self.expert_axes = tuple(expert_axes)
        axes = "".join(self.expert_axes)
        # Router replicated; expert stacks sharded on the expert dim X.
        self.router = ShardedTensor.from_global(mesh, weights.router, "EX")
        self.w_in = ShardedTensor.from_global(mesh, weights.w_in,
                                              f"X_{axes}EF")
        self.w_out = ShardedTensor.from_global(mesh, weights.w_out,
                                               f"X_{axes}FE")
        self.w_gate = None
        if weights.w_gate is not None:
            self.w_gate = ShardedTensor.from_global(mesh, weights.w_gate,
                                                    f"X_{axes}EF")

    def _local_expert_range(self, coord) -> tuple[int, int]:
        per_chip = self.spec.n_experts // self.mesh.group_size(
            self.expert_axes)
        rank = self.mesh.rank_in_group(coord, self.expert_axes)
        return rank * per_chip, (rank + 1) * per_chip

    def forward(self, y: ShardedTensor) -> ShardedTensor:
        """MoE output with the same spec as the (replicated-E) input.

        ``y`` must be ``BLE`` with E unsharded and no axes overlapping
        the expert axes; the result is all-reduced over the expert axes
        (a reduce-scatter variant would fuse with the block's trailing
        collective exactly as the dense FFN does).
        """
        if y.spec.dims != ("B", "L", "E"):
            raise ShardingError(f"expected BLE activations, got {y.spec}")
        if y.spec.axes_for("E"):
            raise ShardingError("expert-parallel MoE expects full E per "
                                "chip; all-gather E first")
        if set(y.spec.mesh_axes_used) & set(self.expert_axes):
            raise ShardingError(
                f"activations use expert axes {self.expert_axes}")
        mesh, spec = self.mesh, self.spec
        k = spec.experts_per_token

        def per_device(coord):
            tokens = y.shards[coord]
            logits = tokens @ self.router.shards[coord]
            kth = np.partition(logits, -k, axis=-1)[..., -k, None]
            chosen = logits >= kth
            if chosen.sum(-1).max() > k:
                order = np.argsort(-logits, axis=-1, kind="stable")
                rank = np.empty_like(order)
                np.put_along_axis(
                    rank, order,
                    np.broadcast_to(np.arange(logits.shape[-1]),
                                    logits.shape).copy(), axis=-1)
                chosen = rank < k
            gates = softmax(np.where(chosen, logits, -np.inf), axis=-1)

            lo, hi = self._local_expert_range(coord)
            out = np.zeros_like(tokens)
            for expert in range(lo, hi):
                local = expert - lo
                gate = gates[..., expert:expert + 1]
                hidden = swish(tokens @ self.w_in.shards[coord][local])
                if spec.ffn is FfnKind.SWIGLU:
                    hidden = hidden * (tokens
                                       @ self.w_gate.shards[coord][local])
                out = out + gate * (hidden
                                    @ self.w_out.shards[coord][local])
            return out

        partial_spec = y.spec.with_partial_sum(
            y.spec.partial_sum + self.expert_axes)
        partial = ShardedTensor(mesh, partial_spec, y.global_shape,
                                mesh.map_devices(per_device))
        return all_reduce(partial, self.expert_axes)


def sharded_moe_matches_reference(weights: MoeWeights,
                                  mesh_shape=(1, 2, 2),
                                  batch: int = 4, length: int = 3,
                                  seed: int = 0) -> bool:
    """Convenience self-check used by the quickstart docs and tests."""
    from repro.moe.layer import moe_forward

    mesh = VirtualMesh(mesh_shape)
    rng = np.random.default_rng(seed)
    y = rng.normal(size=(batch, length, weights.spec.d_model))
    layer = ShardedMoeLayer(weights, mesh)
    got = layer.forward(
        ShardedTensor.from_global(mesh, y, parse("BLE"))).to_global()
    want = moe_forward(weights.spec, weights, y)
    return np.allclose(got, want, rtol=1e-9, atol=1e-12)
