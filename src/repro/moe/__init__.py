"""Mixture-of-experts extension (the paper's Conclusion direction)."""

from repro.moe.config import MoeSpec
from repro.moe.costs import (
    MoeComparison,
    MoeLayerCost,
    dense_layer_decode_cost,
    moe_layer_decode_cost,
    moe_vs_dense_decode,
)
from repro.moe.layer import (
    MoeWeights,
    expert_ffn,
    init_moe_weights,
    moe_forward,
    moe_forward_dispatched,
    route,
)
from repro.moe.sharded import ShardedMoeLayer, sharded_moe_matches_reference

__all__ = [
    "MoeComparison",
    "MoeLayerCost",
    "MoeSpec",
    "MoeWeights",
    "ShardedMoeLayer",
    "dense_layer_decode_cost",
    "expert_ffn",
    "init_moe_weights",
    "moe_forward",
    "moe_forward_dispatched",
    "moe_layer_decode_cost",
    "moe_vs_dense_decode",
    "route",
    "sharded_moe_matches_reference",
]
