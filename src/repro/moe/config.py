"""Mixture-of-experts configuration and accounting.

The paper's conclusion: "Sparsity techniques, such as task-based mixture
of expert architectures ... promise to reduce FLOPs per token of
Transformer models."  This package implements that future-work direction
as an extension: a top-k-routed MoE feedforward layer, its expert-parallel
partitioning on the virtual mesh, and the cost accounting that
substantiates the FLOPs-per-token claim.

Accounting conventions match Section 2's: parameters count everything
stored; *active* parameters count what one token actually multiplies
against — the quantity the 2N FLOPs rule applies to for sparse models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.config import FfnKind


@dataclass(frozen=True)
class MoeSpec:
    """A mixture-of-experts feedforward layer."""

    d_model: int
    d_ff: int                 # per-expert hidden width
    n_experts: int
    experts_per_token: int    # top-k routing
    ffn: FfnKind = FfnKind.SWIGLU

    def __post_init__(self) -> None:
        if self.n_experts < 1:
            raise ValueError("n_experts must be >= 1")
        if not 1 <= self.experts_per_token <= self.n_experts:
            raise ValueError(
                f"experts_per_token must be in [1, {self.n_experts}]")
        for field in ("d_model", "d_ff"):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be >= 1")

    @property
    def ffn_matrices(self) -> int:
        return 3 if self.ffn is FfnKind.SWIGLU else 2

    @property
    def params_per_expert(self) -> int:
        return self.ffn_matrices * self.d_model * self.d_ff

    @property
    def router_params(self) -> int:
        return self.d_model * self.n_experts

    @property
    def total_params(self) -> int:
        """Stored parameters (memory footprint scales with n_experts)."""
        return self.n_experts * self.params_per_expert + self.router_params

    @property
    def active_params(self) -> int:
        """Parameters one token touches (FLOPs scale with top-k only)."""
        return (self.experts_per_token * self.params_per_expert
                + self.router_params)

    @property
    def flops_per_token(self) -> float:
        """The 2N rule applied to *active* parameters."""
        return 2.0 * self.active_params

    @property
    def sparsity_factor(self) -> float:
        """FLOPs reduction vs. a dense layer with the same stored params."""
        return self.total_params / self.active_params

    def dense_equivalent_d_ff(self) -> int:
        """d_ff of a dense FFN with the same *stored* parameter count."""
        return (self.total_params // (self.ffn_matrices * self.d_model))
