"""Reference (single-device) mixture-of-experts feedforward layer.

Top-k routing in the style of Shazeer et al. (2017) / GShard: a linear
router scores experts per token, the top-k experts are evaluated, and
their outputs are combined with the softmax-renormalized router weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.config import FfnKind
from repro.model.functional import softmax, swish
from repro.moe.config import MoeSpec


@dataclass
class MoeWeights:
    """Router + stacked per-expert projection weights."""

    spec: MoeSpec
    router: np.ndarray        # [E, X]
    w_in: np.ndarray          # [X, E, F]
    w_out: np.ndarray         # [X, F, E]
    w_gate: np.ndarray | None  # [X, E, F] for SwiGLU

    @property
    def n_params(self) -> int:
        total = self.router.size + self.w_in.size + self.w_out.size
        if self.w_gate is not None:
            total += self.w_gate.size
        return total


def init_moe_weights(spec: MoeSpec, seed: int = 0, dtype=np.float64,
                     scale: float = 0.02) -> MoeWeights:
    rng = np.random.default_rng(seed)

    def w(*shape):
        return (rng.standard_normal(shape) * scale).astype(dtype)

    return MoeWeights(
        spec=spec,
        router=w(spec.d_model, spec.n_experts),
        w_in=w(spec.n_experts, spec.d_model, spec.d_ff),
        w_out=w(spec.n_experts, spec.d_ff, spec.d_model),
        w_gate=(w(spec.n_experts, spec.d_model, spec.d_ff)
                if spec.ffn is FfnKind.SWIGLU else None),
    )


def route(spec: MoeSpec, weights: MoeWeights, y: np.ndarray
          ) -> tuple[np.ndarray, np.ndarray]:
    """Top-k routing: returns ``(gates [..., X], chosen mask [..., X])``.

    ``gates`` are softmax weights renormalized over the chosen experts
    (zero elsewhere), so they sum to 1 per token.
    """
    logits = y @ weights.router                      # [..., X]
    k = spec.experts_per_token
    # Threshold at each token's k-th largest logit.
    kth = np.partition(logits, -k, axis=-1)[..., -k, None]
    chosen = logits >= kth
    # Guard against ties creating > k experts: keep the first k by logit
    # order (stable, index-ascending among ties).
    if chosen.sum(-1).max() > k:
        order = np.argsort(-logits, axis=-1, kind="stable")
        rank = np.empty_like(order)
        np.put_along_axis(rank, order,
                          np.broadcast_to(np.arange(logits.shape[-1]),
                                          logits.shape).copy(), axis=-1)
        chosen = rank < k
    masked = np.where(chosen, logits, -np.inf)
    gates = softmax(masked, axis=-1)
    return gates, chosen


def expert_ffn(spec: MoeSpec, weights: MoeWeights, y: np.ndarray,
               expert: int) -> np.ndarray:
    """One expert's feedforward applied to all tokens."""
    hidden = swish(y @ weights.w_in[expert])
    if spec.ffn is FfnKind.SWIGLU:
        hidden = hidden * (y @ weights.w_gate[expert])
    return hidden @ weights.w_out[expert]


def moe_forward(spec: MoeSpec, weights: MoeWeights, y: np.ndarray
                ) -> np.ndarray:
    """Dense reference evaluation: every expert on every token, gated.

    Mathematically identical to dispatch-based execution (gates are zero
    for unchosen experts); used as the numerical gold standard.  Real
    systems dispatch tokens to save compute — modeled in
    :mod:`repro.moe.costs`.
    """
    gates, _ = route(spec, weights, y)
    out = np.zeros_like(y)
    for expert in range(spec.n_experts):
        gate = gates[..., expert:expert + 1]
        if not gate.any():
            continue
        out = out + gate * expert_ffn(spec, weights, y, expert)
    return out


def moe_forward_dispatched(spec: MoeSpec, weights: MoeWeights,
                           y: np.ndarray) -> np.ndarray:
    """Dispatch-based evaluation: each expert sees only its tokens.

    The computation real MoE systems perform (and what the FLOPs
    accounting assumes); must equal :func:`moe_forward` exactly.
    """
    flat = y.reshape(-1, spec.d_model)
    gates, chosen = route(spec, weights, flat)
    out = np.zeros_like(flat)
    for expert in range(spec.n_experts):
        token_idx = np.nonzero(chosen[:, expert])[0]
        if token_idx.size == 0:
            continue
        expert_out = expert_ffn(spec, weights, flat[token_idx], expert)
        out[token_idx] += gates[token_idx, expert:expert + 1] * expert_out
    return out.reshape(y.shape)
