"""Estimator-vs-executed-trace cross-validation.

EXPERIMENTS.md claims the estimator's communication term is "pinned
event-for-event to the executed program".  This module turns that claim
into an automated pass: it runs a real prefill + decode step of a tiny
model on the virtual mesh with span tracing enabled, then replays the
executed collective spans against
:func:`repro.perf.comm_model.forward_comm_events` and checks, event for
event, that the symbolic generator predicts the same op, the same mesh
axes, and the same per-chip byte count.  Any drift between what the
executor does and what the estimator prices — a new collective, a
changed axis order, a payload off by a factor — surfaces as a
:class:`EventDelta` instead of silently mispricing PaLM-540B sweeps.

The standard suite (:func:`run_crosscheck`) covers the three layout
families of Section 3.2 (1D weight-stationary, 2D weight-stationary,
weight-gathered) on **both** mesh execution backends;
:func:`format_table` renders the per-layout match table that appears in
EXPERIMENTS.md's cross-validation appendix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mesh import VirtualMesh
from repro.observability.spans import install_tracer
from repro.partitioning.plan import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf.comm_model import forward_comm_events

#: Mesh and workload small enough to execute everywhere, large enough
#: that every collective family appears with a non-degenerate group.
MESH_SHAPE = (2, 2, 2)
BATCH = 8
PROMPT_LEN = 4

#: One plan per Section 3.2 layout family (the acceptance matrix).
DEFAULT_PLANS = (
    LayoutPlan(FfnLayoutKind.WS_1D, AttentionLayoutKind.HEAD),
    LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH),
    LayoutPlan(FfnLayoutKind.WG_XY, AttentionLayoutKind.BATCH),
)


def crosscheck_config():
    """The tiny executable model the pass replays (divides ``2x2x2``)."""
    from repro.model import tiny_test_config

    return tiny_test_config(n_layers=2, d_model=16, d_ff=32, n_heads=8,
                            d_head=8, vocab_size=32)


@dataclass(frozen=True)
class EventDelta:
    """One executed-vs-modeled disagreement at a given event index."""

    index: int
    what: str            # "op" | "axes" | "bytes" | "missing" | "extra"
    executed: object
    modeled: object

    def __str__(self) -> str:
        return (f"event {self.index}: {self.what} executed="
                f"{self.executed!r} modeled={self.modeled!r}")


@dataclass
class PhaseCheck:
    """Crosscheck result for one (plan, backend, phase) cell."""

    plan: LayoutPlan
    backend: str
    phase: str
    executed_events: int
    modeled_events: int
    deltas: list[EventDelta] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.deltas

    @property
    def matched(self) -> int:
        mismatched = {d.index for d in self.deltas}
        return min(self.executed_events, self.modeled_events) - len(
            {i for i in mismatched
             if i < min(self.executed_events, self.modeled_events)})

    @property
    def layout(self) -> str:
        return f"{self.plan.ffn.value}/{self.plan.attention.value}"


def _compare(executed, modeled, itemsize: int) -> list[EventDelta]:
    """Event-for-event diff of executed collective spans vs the symbolic
    generator's :class:`AnalyticCollective` list."""
    deltas: list[EventDelta] = []
    for i in range(max(len(executed), len(modeled))):
        if i >= len(executed):
            want = modeled[i]
            deltas.append(EventDelta(i, "missing", None,
                                     (want.op, want.axes)))
            continue
        if i >= len(modeled):
            got = executed[i]
            deltas.append(EventDelta(i, "extra",
                                     (got.name, got.attrs["axes"]), None))
            continue
        got, want = executed[i], modeled[i]
        if got.name != want.op:
            deltas.append(EventDelta(i, "op", got.name, want.op))
            continue
        if tuple(got.attrs["axes"]) != tuple(want.axes):
            deltas.append(EventDelta(i, "axes", got.attrs["axes"],
                                     want.axes))
            continue
        want_bytes = want.payload_elements * itemsize
        if abs(got.attrs["payload_bytes"] - want_bytes) > 0.5:
            deltas.append(EventDelta(i, "bytes",
                                     got.attrs["payload_bytes"],
                                     want_bytes))
    return deltas


def crosscheck_plan(plan: LayoutPlan, backend: str = "loop", *,
                    config=None, mesh_shape=MESH_SHAPE, batch=BATCH,
                    prompt_len=PROMPT_LEN) -> list[PhaseCheck]:
    """Execute prefill + one decode step under ``plan`` and diff the
    collective span stream against the estimator's symbolic events.

    Returns one :class:`PhaseCheck` per phase ("prefill", "decode").
    """
    import numpy as np

    from repro.layouts import ShardedTransformer
    from repro.model import init_weights

    config = config or crosscheck_config()
    weights = init_weights(config)
    itemsize = weights.embedding.dtype.itemsize
    mesh = VirtualMesh(mesh_shape, backend=backend)
    tracer = install_tracer(mesh)
    model = ShardedTransformer(weights, mesh, plan)
    tracer.clear()  # weight placement is communication-free, but be safe

    rng = np.random.default_rng(0)
    prompt = rng.integers(0, config.vocab_size, size=(batch, prompt_len))
    _, caches = model.prefill(prompt, prompt_len + 1)
    prefill_spans = tracer.collectives()

    tracer.clear()
    model.decode_step(prompt[:, -1], caches)
    decode_spans = tracer.collectives()

    checks = []
    for phase, spans, l_new in (("prefill", prefill_spans, prompt_len),
                                ("decode", decode_spans, 1)):
        modeled = forward_comm_events(config, plan, mesh.topology, batch,
                                      l_new)
        checks.append(PhaseCheck(
            plan=plan, backend=backend, phase=phase,
            executed_events=len(spans), modeled_events=len(modeled),
            deltas=_compare(spans, modeled, itemsize)))
    return checks


def run_crosscheck(plans=DEFAULT_PLANS, backends=("loop", "stacked"), *,
                   config=None, mesh_shape=MESH_SHAPE, batch=BATCH,
                   prompt_len=PROMPT_LEN) -> list[PhaseCheck]:
    """The standard suite: every plan x backend x phase cell."""
    checks: list[PhaseCheck] = []
    for backend in backends:
        for plan in plans:
            checks.extend(crosscheck_plan(
                plan, backend, config=config, mesh_shape=mesh_shape,
                batch=batch, prompt_len=prompt_len))
    return checks


def format_table(checks: list[PhaseCheck]) -> str:
    """The per-layout event-match table (markdown, EXPERIMENTS.md
    appendix format)."""
    lines = ["| layout | backend | phase | executed | modeled | matched "
             "| status |",
             "|---|---|---|---|---|---|---|"]
    for c in checks:
        status = "ok" if c.ok else "; ".join(str(d) for d in c.deltas[:3])
        lines.append(f"| {c.layout} | {c.backend} | {c.phase} "
                     f"| {c.executed_events} | {c.modeled_events} "
                     f"| {c.matched} | {status} |")
    return "\n".join(lines)
