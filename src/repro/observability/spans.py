"""Structured spans for everything the virtual mesh executes.

The analytical model (Section 2, Appendix A.1) is only trustworthy while
the executed program stays observable: every collective, sharded einsum
and Looped-CollectiveEinsum ring step that runs on a
:class:`~repro.mesh.virtual_mesh.VirtualMesh` can be recorded as a
:class:`Span` — op, mesh axes, payload bytes, element count, wall-clock
duration, and the *modeled* time the Appendix A.1 cost model assigns to
the same event.  Aggregated (:mod:`repro.observability.metrics`), the
spans give per-phase/per-layer communication volume and roofline
occupancy; exported (:mod:`repro.observability.chrome_trace`), they give
a Perfetto timeline; replayed against the symbolic generator
(:mod:`repro.observability.crosscheck`), they keep the estimator honest.

Instrumentation is off by default and costs one ``getattr`` per op when
off.  Attach a tracer with :meth:`VirtualMesh.install_tracer` (or
:func:`install_tracer` here); the hooks in :mod:`repro.mesh.ops`,
:mod:`repro.mesh.looped`, :mod:`repro.layouts.model` and
:mod:`repro.serving.sharded` then fill it in, on **both** mesh execution
backends — the hooks sit at the backend-independent entry points, so
``loop`` and ``stacked`` runs produce directly comparable span streams.

Basic use (no mesh needed — the tracer is a plain recorder)::

    >>> t = Tracer()
    >>> with t.phase("decode"):
    ...     _ = t.collective("all_gather", ("x",), 4, 1024)
    >>> [(s.kind, s.name, s.phase) for s in t.spans]
    [('collective', 'all_gather', 'decode'), ('phase', 'decode', 'decode')]
    >>> t.spans[0].attrs["payload_bytes"]
    1024
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.collectives.cost import (
    all_gather_time,
    all_reduce_time,
    all_to_all_time,
    reduce_scatter_time,
)
from repro.hardware.chip import TPU_V4, ChipSpec

#: Span kinds emitted by the built-in instrumentation.
COLLECTIVE = "collective"   # one mesh collective (all_gather, ...)
COMPUTE = "compute"         # one sharded einsum
RING_STEP = "ring_step"     # one collective-permute hop of a looped einsum
FUSED = "fused"             # envelope of a Looped-CollectiveEinsum
PHASE = "phase"             # prefill / decode region
LAYER = "layer"             # one transformer block
REQUEST = "request"         # one serving request
REGION = "region"           # free-form grouping
MARK = "mark"               # zero-duration point event (state transition)


@dataclass(frozen=True)
class Span:
    """One recorded unit of mesh work.

    ``start_s``/``duration_s`` are wall-clock seconds relative to the
    tracer's epoch; ``attrs`` carries the structured payload (mesh axes,
    group size, payload bytes, element count, FLOPs, and ``modeled_s`` —
    the Appendix A.1 / roofline time the cost model assigns).  ``layer``
    is -1 outside any transformer block.
    """

    span_id: int
    parent_id: int | None
    name: str
    kind: str
    start_s: float
    duration_s: float
    phase: str = ""
    layer: int = -1
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class Tracer:
    """Append-only span recorder with phase/layer/request context.

    The context managers (:meth:`phase`, :meth:`layer`, :meth:`request`,
    :meth:`region`) maintain a current (phase, layer, parent-span) state
    that leaf spans inherit, producing a span *tree*; they also emit a
    region span of their own on exit.  ``event_log`` (optional) joins the
    span timeline to the structured :class:`repro.events.EventLog` used
    by the fault-tolerance stack: closing a request span records a
    ``request_span`` event carrying the same ``request_id``.
    """

    def __init__(self, chip: ChipSpec = TPU_V4, event_log=None,
                 clock: Callable[[], float] | None = None):
        self.chip = chip
        self.event_log = event_log
        self.spans: list[Span] = []
        self.clock = clock
        self._epoch = 0.0 if clock is not None else time.perf_counter()
        self._next_id = 0
        self._phase = ""
        self._layer = -1
        self._parent: int | None = None

    # -- time & bookkeeping -------------------------------------------------

    def now(self) -> float:
        """Span timestamp base: seconds since the tracer was created.

        With a ``clock`` installed, returns that *virtual* clock instead
        of wall time — the cluster control plane passes its simulated
        ``now_s`` so chaos-run span streams (and the ``request_span``
        events they record) are bit-for-bit deterministic under a fixed
        seed, with no wall-clock leakage.
        """
        if self.clock is not None:
            return self.clock()
        return time.perf_counter() - self._epoch

    def clear(self) -> None:
        self.spans.clear()

    def __len__(self) -> int:
        return len(self.spans)

    def _record(self, name: str, kind: str, start_s: float,
                duration_s: float, span_id: int | None = None,
                parent_id: int | None = None,
                attrs: dict[str, Any] | None = None) -> Span:
        if span_id is None:
            span_id = self._next_id
            self._next_id += 1
        span = Span(span_id=span_id,
                    parent_id=(self._parent if parent_id is None
                               else parent_id),
                    name=name, kind=kind, start_s=start_s,
                    duration_s=duration_s, phase=self._phase,
                    layer=self._layer, attrs=attrs or {})
        self.spans.append(span)
        return span

    # -- leaf spans (called by the mesh instrumentation) --------------------

    def collective(self, op: str, axes: Sequence[str], group_size: int,
                   payload_bytes: int, *, elements: int = 0,
                   start_s: float | None = None,
                   kind: str = COLLECTIVE, **extra: Any) -> Span:
        """Record one collective with its Appendix A.1 modeled time.

        ``payload_bytes`` follows the :class:`repro.mesh.ops.CommRecord`
        convention (per-chip output for all-gather, input for
        reduce-scatter, 2x buffer for all-reduce, buffer for all-to-all,
        zero for split; one in-flight buffer for a ring step).
        """
        end = self.now()
        start = end if start_s is None else start_s
        attrs: dict[str, Any] = {
            "axes": tuple(axes), "group_size": int(group_size),
            "payload_bytes": int(payload_bytes), "elements": int(elements),
            "modeled_s": self.modeled_collective_s(op, payload_bytes,
                                                   group_size),
        }
        attrs.update(extra)
        return self._record(op, kind, start, end - start, attrs=attrs)

    def compute(self, name: str, *, flops: float = 0.0, elements: int = 0,
                start_s: float | None = None, **extra: Any) -> Span:
        """Record one compute op (sharded einsum) with its roofline time."""
        end = self.now()
        start = end if start_s is None else start_s
        attrs: dict[str, Any] = {
            "flops": float(flops), "elements": int(elements),
            "modeled_s": float(flops) / self.chip.peak_flops,
        }
        attrs.update(extra)
        return self._record(name, COMPUTE, start, end - start, attrs=attrs)

    def mark(self, name: str, kind: str = MARK, **attrs: Any) -> Span:
        """Record a zero-duration point span (a state transition).

        The cluster control plane uses these for replica health changes,
        circuit-breaker transitions, failovers and hedges, so the same
        trace that shows mesh work also shows *why* traffic moved.
        """
        now = self.now()
        return self._record(name, kind, now, 0.0, attrs=dict(attrs))

    def modeled_collective_s(self, op: str, payload_bytes: float,
                             group_size: int) -> float:
        """Appendix A.1 seconds for one collective at this chip's ICI
        bandwidth (with the logged-payload conventions above)."""
        bw = self.chip.interconnect_bandwidth
        if op == "all_gather":
            return all_gather_time(payload_bytes, group_size, bw)
        if op == "reduce_scatter":
            return reduce_scatter_time(payload_bytes, group_size, bw)
        if op == "all_reduce":
            # Logged payload is already the 2x all-reduce buffer.
            return all_reduce_time(payload_bytes / 2, group_size, bw)
        if op == "all_to_all":
            return all_to_all_time(payload_bytes, group_size, bw)
        if op in ("split",):
            return 0.0
        # Ring steps and other neighbor exchanges: one buffer, one hop.
        return payload_bytes / bw

    # -- context regions ----------------------------------------------------

    @contextmanager
    def region(self, name: str, kind: str = REGION,
               **attrs: Any) -> Iterator[int]:
        """Open an envelope span; leaf spans inside become its children.

        Yields the region's span id (recorded on exit, so the region span
        appears *after* its children in ``spans``).
        """
        span_id = self._next_id
        self._next_id += 1
        saved_parent, self._parent = self._parent, span_id
        start = self.now()
        try:
            yield span_id
        finally:
            self._parent = saved_parent
            self._record(name, kind, start, self.now() - start,
                         span_id=span_id, parent_id=saved_parent,
                         attrs=dict(attrs))

    @contextmanager
    def phase(self, name: str) -> Iterator[int]:
        """Tag everything inside as belonging to ``name`` (e.g. "decode")."""
        saved, self._phase = self._phase, name
        try:
            with self.region(name, kind=PHASE) as span_id:
                yield span_id
        finally:
            self._phase = saved

    @contextmanager
    def layer(self, index: int) -> Iterator[int]:
        """Tag everything inside as belonging to transformer block
        ``index``."""
        saved, self._layer = self._layer, index
        try:
            with self.region(f"layer{index}", kind=LAYER) as span_id:
                yield span_id
        finally:
            self._layer = saved

    @contextmanager
    def request(self, request_id: int) -> Iterator[int]:
        """Open a per-request span tree; joins the :class:`EventLog`.

        On exit, if the tracer carries an event log, a ``request_span``
        event is recorded with the same ``request_id`` — the join key
        between the span timeline and the serving/fault event timeline.
        """
        start = self.now()
        with self.region(f"request{request_id}", kind=REQUEST,
                         request_id=request_id) as span_id:
            yield span_id
        if self.event_log is not None:
            self.event_log.record("request_span", request_id=request_id,
                                  span_id=span_id,
                                  duration_s=self.now() - start)

    # -- queries ------------------------------------------------------------

    def of_kind(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def collectives(self) -> list[Span]:
        """Collective leaf spans in execution order."""
        return self.of_kind(COLLECTIVE)

    def children(self, span_id: int) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def request_tree(self, request_id: int) -> list[Span]:
        """The request's envelope span plus all transitive children."""
        roots = [s for s in self.spans if s.kind == REQUEST
                 and s.attrs.get("request_id") == request_id]
        if not roots:
            return []
        keep: list[Span] = []
        frontier = {s.span_id for s in roots}
        ordered = sorted(self.spans, key=lambda s: s.span_id)
        # Children always have larger ids than their parent's reserved id,
        # so one ascending sweep collects the whole subtree.
        for span in ordered:
            if span.span_id in frontier or span.parent_id in frontier:
                frontier.add(span.span_id)
                keep.append(span)
        return keep


def tracer_of(mesh) -> Tracer | None:
    """The tracer attached to a mesh, or ``None`` (duck-typed: works for
    anything carrying a ``tracer`` attribute)."""
    return getattr(mesh, "tracer", None)


def install_tracer(mesh, chip: ChipSpec = TPU_V4,
                   event_log=None) -> Tracer:
    """Attach a fresh :class:`Tracer` to a mesh and return it.

    Every collective/einsum the mesh executes from now on is recorded.
    Remove with :func:`remove_tracer`.
    """
    tracer = Tracer(chip=chip, event_log=event_log)
    mesh.tracer = tracer
    return tracer


def remove_tracer(mesh) -> None:
    """Detach the tracer (instrumentation reverts to zero-overhead)."""
    if hasattr(mesh, "tracer"):
        del mesh.tracer
