"""Observability for executed mesh programs: spans, metrics, traces.

Three always-importable submodules (re-exported here):

- :mod:`~repro.observability.spans` — the :class:`Tracer` span recorder
  and the ``install_tracer`` hook the mesh instrumentation looks for;
- :mod:`~repro.observability.metrics` — per-phase / per-layer rollups;
- :mod:`~repro.observability.chrome_trace` — shared Perfetto JSON
  builders (also used by :mod:`repro.simulator.trace`).

:mod:`~repro.observability.crosscheck` (estimator vs. executed-trace
validation) is deliberately **not** imported here: it pulls in
:mod:`repro.layouts` and :mod:`repro.perf`, and this package must stay
importable from :mod:`repro.simulator.trace` without cycles.  Import it
explicitly: ``from repro.observability import crosscheck``.
"""

from repro.observability.chrome_trace import (
    build_trace,
    complete_event,
    process_metadata,
    spans_to_chrome_trace,
    thread_metadata,
    write_span_trace,
    write_trace,
)
from repro.observability.metrics import (
    GroupMetrics,
    format_capture_stats,
    format_kvstore_stats,
    format_layer_metrics,
    format_phase_metrics,
    kvstore_stats_line,
    layer_metrics,
    phase_metrics,
)
from repro.observability.spans import (
    COLLECTIVE,
    COMPUTE,
    FUSED,
    LAYER,
    MARK,
    PHASE,
    REGION,
    REQUEST,
    RING_STEP,
    Span,
    Tracer,
    install_tracer,
    remove_tracer,
    tracer_of,
)

__all__ = [
    "COLLECTIVE", "COMPUTE", "FUSED", "LAYER", "MARK", "PHASE", "REGION",
    "REQUEST", "RING_STEP", "Span", "Tracer", "install_tracer",
    "remove_tracer", "tracer_of", "GroupMetrics", "phase_metrics",
    "layer_metrics", "format_phase_metrics", "format_layer_metrics",
    "format_capture_stats", "format_kvstore_stats", "kvstore_stats_line",
    "build_trace", "complete_event", "process_metadata",
    "thread_metadata", "spans_to_chrome_trace", "write_trace",
    "write_span_trace",
]
