"""Aggregate executed spans into per-phase / per-layer mesh metrics.

The span stream of :mod:`repro.observability.spans` is exact but long;
operators want the rolled-up view: how many collectives per phase, how
many bytes moved, and how the *modeled* time splits between compute and
communication.  :func:`phase_metrics` / :func:`layer_metrics` produce
those tables from any span list, and the ``format_*`` helpers render the
ASCII reports behind ``repro-inference metrics``.

Modeled quantities use the same pricing as the estimator: collective
seconds from Appendix A.1 (computed when the span was recorded, at the
tracer's chip bandwidth) and compute seconds as FLOPs over the chip's
peak — so ``mfu`` here is the roofline MFU the executed program would
achieve if every op ran at the modeled rate, and ``compute_fraction`` is
its roofline occupancy (the share of modeled time not spent waiting on
the interconnect).  Wall-clock seconds are also aggregated, but on a
numpy mesh they measure the simulation, not the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.chip import TPU_V4, ChipSpec
from repro.observability.spans import COLLECTIVE, COMPUTE, PHASE, RING_STEP

#: Span kinds that carry cost; envelope/region spans only provide wall
#: time and grouping context.
_LEAF_KINDS = (COLLECTIVE, RING_STEP, COMPUTE)


@dataclass
class GroupMetrics:
    """Rolled-up metrics for one group of spans (a phase or a layer)."""

    key: str
    collective_counts: dict[str, int] = field(default_factory=dict)
    comm_bytes: int = 0
    comm_events: int = 0
    flops: float = 0.0
    compute_events: int = 0
    wall_s: float = 0.0
    modeled_comm_s: float = 0.0
    modeled_compute_s: float = 0.0

    @property
    def modeled_total_s(self) -> float:
        """Serial (no-overlap) modeled time: compute + communication."""
        return self.modeled_comm_s + self.modeled_compute_s

    @property
    def compute_fraction(self) -> float:
        """Roofline occupancy: modeled compute share of modeled time."""
        total = self.modeled_total_s
        return self.modeled_compute_s / total if total else 0.0

    def mfu(self, chip: ChipSpec = TPU_V4) -> float:
        """Model FLOPs utilization at the modeled (serial) step time."""
        total = self.modeled_total_s
        return (self.flops / (chip.peak_flops * total)) if total else 0.0

    def _absorb(self, span) -> None:
        if span.kind in (COLLECTIVE, RING_STEP):
            self.collective_counts[span.name] = \
                self.collective_counts.get(span.name, 0) + 1
            self.comm_bytes += span.attrs.get("payload_bytes", 0)
            self.comm_events += 1
            self.modeled_comm_s += span.attrs.get("modeled_s", 0.0)
            self.wall_s += span.duration_s
        elif span.kind == COMPUTE:
            self.flops += span.attrs.get("flops", 0.0)
            self.compute_events += 1
            self.modeled_compute_s += span.attrs.get("modeled_s", 0.0)
            self.wall_s += span.duration_s


def phase_metrics(spans) -> dict[str, GroupMetrics]:
    """Per-phase rollup of leaf spans, in first-seen phase order.

    ``wall_s`` of a phase is replaced by the enclosing phase-region
    span's duration when one exists (it includes per-op glue the leaf
    spans don't cover).
    """
    groups: dict[str, GroupMetrics] = {}
    region_wall: dict[str, float] = {}
    for span in spans:
        if span.kind == PHASE:
            region_wall[span.phase] = (region_wall.get(span.phase, 0.0)
                                       + span.duration_s)
            continue
        if span.kind not in _LEAF_KINDS:
            continue
        group = groups.setdefault(span.phase,
                                  GroupMetrics(key=span.phase or "(none)"))
        group._absorb(span)
    for phase, wall in region_wall.items():
        if phase in groups:
            groups[phase].wall_s = wall
    return groups


def layer_metrics(spans, phase: str | None = None
                  ) -> dict[tuple[str, int], GroupMetrics]:
    """Per-(phase, layer) rollup; ``layer == -1`` collects out-of-block
    work (embedding residual entry, final norm, logits)."""
    groups: dict[tuple[str, int], GroupMetrics] = {}
    for span in spans:
        if phase is not None and span.phase != phase:
            continue
        if span.kind not in _LEAF_KINDS:
            continue
        key = (span.phase, span.layer)
        group = groups.setdefault(
            key, GroupMetrics(key=f"{span.phase or '(none)'}/"
                              f"{'L%d' % span.layer if span.layer >= 0 else 'outside'}"))
        group._absorb(span)
    return groups


def _row(label: str, m: GroupMetrics, chip: ChipSpec) -> str:
    counts = " ".join(f"{op}x{n}" for op, n in
                      sorted(m.collective_counts.items()))
    return (f"{label:>18s} {m.comm_events:>6d} {m.comm_bytes / 1e6:>9.3f} "
            f"{m.modeled_comm_s * 1e6:>10.2f} {m.modeled_compute_s * 1e6:>10.2f} "
            f"{m.compute_fraction:>8.1%} {m.mfu(chip):>7.1%}  {counts}")


_HEADER = (f"{'group':>18s} {'colls':>6s} {'MB/chip':>9s} "
           f"{'comm µs':>10s} {'mxu µs':>10s} {'roofline':>8s} "
           f"{'MFU':>7s}  collective counts")


def format_phase_metrics(spans, chip: ChipSpec = TPU_V4) -> str:
    """ASCII per-phase table (the ``repro-inference metrics`` report)."""
    lines = ["Per-phase mesh metrics (modeled times at "
             f"{chip.name} constants)", _HEADER]
    for phase, m in phase_metrics(spans).items():
        lines.append(_row(phase or "(none)", m, chip))
    return "\n".join(lines)


def format_layer_metrics(spans, phase: str,
                         chip: ChipSpec = TPU_V4) -> str:
    """ASCII per-layer table for one phase."""
    lines = [f"Per-layer mesh metrics, phase {phase!r}", _HEADER]
    for (_, layer), m in sorted(layer_metrics(spans, phase).items()):
        label = f"L{layer}" if layer >= 0 else "outside"
        lines.append(_row(label, m, chip))
    return "\n".join(lines)


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[idx]


@dataclass
class ClassSlo:
    """Latency/goodput rollup for one priority class."""

    name: str
    completed: int = 0
    goodput: int = 0          # completions that met their deadline
    tokens: int = 0
    ttft: list[float] = field(default_factory=list)
    tpot: list[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "completed": self.completed,
            "goodput": self.goodput,
            "tokens": self.tokens,
            "ttft_p50_s": round(_percentile(self.ttft, 0.50), 6),
            "ttft_p99_s": round(_percentile(self.ttft, 0.99), 6),
            "tpot_p50_s": round(_percentile(self.tpot, 0.50), 6),
            "tpot_p99_s": round(_percentile(self.tpot, 0.99), 6),
        }


def slo_summary(events) -> dict[str, ClassSlo]:
    """Per-class TTFT/TPOT percentiles + goodput from an event stream.

    Consumes ``request_completed`` events carrying the latency fields the
    cluster control plane records (``priority_class``, ``ttft_s``,
    ``tpot_s``, ``n_tokens``, ``met_deadline``).  Goodput counts
    completions that met their deadline; requests without a deadline
    always count.  Events missing the latency fields (older producers)
    are skipped.
    """
    classes: dict[str, ClassSlo] = {}
    for event in events:
        if event.kind != "request_completed":
            continue
        if event.get("ttft_s") is None:
            continue
        name = event.get("priority_class", "(none)")
        slo = classes.setdefault(name, ClassSlo(name=name))
        slo.completed += 1
        if event.get("met_deadline", True):
            slo.goodput += 1
        slo.tokens += event.get("n_tokens", 0)
        slo.ttft.append(event["ttft_s"])
        slo.tpot.append(event["tpot_s"])
    return classes


def format_slo_summary(classes: dict[str, ClassSlo]) -> str:
    """ASCII per-class SLO table (the autoscale bench report)."""
    lines = ["Per-class SLO summary",
             f"{'class':>14s} {'done':>6s} {'goodput':>8s} {'tokens':>8s} "
             f"{'ttft p50':>10s} {'ttft p99':>10s} {'tpot p50':>10s} "
             f"{'tpot p99':>10s}"]
    for name in sorted(classes):
        d = classes[name].as_dict()
        lines.append(
            f"{name:>14s} {d['completed']:>6d} {d['goodput']:>8d} "
            f"{d['tokens']:>8d} {d['ttft_p50_s'] * 1e3:>8.2f}ms "
            f"{d['ttft_p99_s'] * 1e3:>8.2f}ms "
            f"{d['tpot_p50_s'] * 1e3:>8.2f}ms "
            f"{d['tpot_p99_s'] * 1e3:>8.2f}ms")
    return "\n".join(lines)


def capture_stats_line(stats: dict) -> str:
    """One-line capture-cache summary for per-replica chaos reports."""
    return (f"programs={stats.get('programs', 0)} "
            f"replays={stats.get('replays', 0)} "
            f"hit_rate={stats.get('hit_rate', 0.0):.1%} "
            f"evictions={stats.get('evictions', 0)} "
            f"invalidations={stats.get('invalidations', 0)}")


def kvstore_stats_line(stats: dict) -> str:
    """One-line prefix-cache summary for per-replica chaos reports."""
    return (f"pages={stats.get('pages', 0)}"
            f"/{stats.get('capacity_pages', 0)} "
            f"hit_rate={stats.get('hit_rate', 0.0):.1%} "
            f"tokens_saved={stats.get('tokens_total', 0) - stats.get('tokens_computed', 0)} "
            f"evictions={stats.get('evictions', 0)} "
            f"leases={stats.get('leases', 0)}/"
            f"{stats.get('releases', 0)}")


def format_kvstore_stats(stats: dict) -> str:
    """ASCII table for a :meth:`KVStore.stats` snapshot.

    Shows the paged prefix cache's population (pages resident and
    pinned), the lookup/hit/miss counters at both request and page
    granularity, lease accounting, and the per-reason invalidation
    breakdown (``replan``, ``restart``, ``explicit``).  ``tokens_total``
    vs ``tokens_computed`` is the headline: the gap is prefill compute
    the radix index turned into page reuse.
    """
    lines = ["Paged KV prefix cache",
             f"{'counter':>18s} {'value':>10s}"]
    for key in ("pages", "capacity_pages", "page_tokens", "pinned_pages",
                "lookups", "hits", "misses", "pages_hit", "pages_missed",
                "inserts", "adoptions", "evictions", "invalidations",
                "leases", "releases", "stale_releases",
                "tokens_total", "tokens_computed", "bytes_saved"):
        lines.append(f"{key:>18s} {stats.get(key, 0):>10d}")
    lines.append(f"{'hit rate':>18s} {stats.get('hit_rate', 0.0):>10.1%}")
    lines.append(f"{'occupancy':>18s} {stats.get('occupancy', 0.0):>10.1%}")
    reasons = stats.get("invalidation_reasons") or {}
    if reasons:
        lines.append("invalidations by reason:")
        for reason, count in sorted(reasons.items()):
            lines.append(f"{reason:>18s} {count:>10d}")
    return "\n".join(lines)


def format_capture_stats(stats: dict) -> str:
    """ASCII table for a :meth:`StepCompiler.stats` snapshot.

    Shows the program-cache population and hit/miss/eviction counters,
    plus the per-reason invalidation breakdown (``plan``, ``caches``,
    ``degraded``, ... — the :meth:`CapturedProgram.mismatch` reasons and
    ``explicit`` for :meth:`StepCompiler.invalidate` calls).
    """
    lines = ["Step-compiler program cache",
             f"{'counter':>18s} {'value':>10s}"]
    for key in ("programs", "eager_steps", "captures", "replays",
                "hits", "misses", "evictions", "invalidations"):
        lines.append(f"{key:>18s} {stats.get(key, 0):>10d}")
    lines.append(f"{'hit rate':>18s} {stats.get('hit_rate', 0.0):>10.1%}")
    reasons = stats.get("invalidation_reasons") or {}
    if reasons:
        lines.append("invalidations by reason:")
        for reason, count in sorted(reasons.items()):
            lines.append(f"{reason:>18s} {count:>10d}")
    return "\n".join(lines)
