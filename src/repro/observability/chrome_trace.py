"""Chrome/Perfetto trace-event JSON, shared by every trace producer.

One builder serves both timelines the repo can produce: the *analytical*
schedule of :mod:`repro.simulator` (per-resource lanes of one simulated
chip) and the *executed* span stream of :mod:`repro.observability.spans`
(what the virtual mesh actually ran).  Write the JSON to a file and open
it in `Perfetto <https://ui.perfetto.dev>`_ or ``chrome://tracing``.

Only the stable subset of the trace-event format is emitted: ``M``
metadata events naming processes/threads and ``X`` complete events with
microsecond timestamps — exactly what Perfetto's JSON importer accepts.

    >>> trace = build_trace([process_metadata(0, "mesh"),
    ...                      complete_event("all_gather", "collective",
    ...                                     0, 1, ts_s=0.0, dur_s=2e-6)])
    >>> sorted(trace)
    ['displayTimeUnit', 'traceEvents']
    >>> trace["traceEvents"][1]["dur"]
    2.0
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

_MICROSECONDS = 1e6

#: Lane (thread) order for executed-span traces: one row per span kind,
#: outermost grouping first so Perfetto nests the timeline naturally.
SPAN_LANES = (
    ("request", "requests"),
    ("phase", "phases"),
    ("layer", "layers"),
    ("fused", "fused einsums"),
    ("collective", "collectives"),
    ("ring_step", "ring steps"),
    ("compute", "einsums"),
    ("region", "regions"),
)


def process_metadata(pid: int, name: str) -> dict:
    """An ``M`` event naming a process (one timeline group)."""
    return {"name": "process_name", "ph": "M", "pid": pid,
            "args": {"name": name}}


def thread_metadata(pid: int, tid: int, name: str) -> dict:
    """An ``M`` event naming a thread (one lane within a process)."""
    return {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name}}


def complete_event(name: str, category: str, pid: int, tid: int, *,
                   ts_s: float, dur_s: float,
                   args: dict | None = None) -> dict:
    """An ``X`` (complete) event; times in seconds, stored as µs."""
    event = {"name": name, "cat": category or "op", "ph": "X", "pid": pid,
             "tid": tid, "ts": ts_s * _MICROSECONDS,
             "dur": dur_s * _MICROSECONDS}
    if args:
        event["args"] = args
    return event


def build_trace(events: Iterable[dict]) -> dict:
    """Wrap events in the top-level trace object Perfetto expects."""
    return {"traceEvents": list(events), "displayTimeUnit": "ms"}


def write_trace(trace: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(trace, f)


def spans_to_chrome_trace(spans: Sequence, *,
                          process_name: str = "virtual-mesh",
                          pid: int = 0) -> dict:
    """Executed mesh spans -> Chrome trace, one lane per span kind.

    Every span becomes an ``X`` event whose ``args`` carry the structured
    attributes (axes, payload bytes, modeled seconds, phase, layer), so
    Perfetto's selection panel shows the cost-model view of each op next
    to its wall-clock box.
    """
    events = [process_metadata(pid, process_name)]
    lanes = {kind: tid for tid, (kind, _) in enumerate(SPAN_LANES)}
    used = sorted({lanes.get(s.kind, len(SPAN_LANES)) for s in spans})
    names = dict(enumerate(label for _, label in SPAN_LANES))
    for tid in used:
        events.append(thread_metadata(pid, tid, names.get(tid, "other")))
    for span in spans:
        args = {"phase": span.phase, "layer": span.layer}
        for key, value in span.attrs.items():
            args[key] = list(value) if isinstance(value, tuple) else value
        events.append(complete_event(
            span.name, span.kind, pid, lanes.get(span.kind, len(SPAN_LANES)),
            ts_s=span.start_s, dur_s=span.duration_s, args=args))
    return build_trace(events)


def write_span_trace(spans: Sequence, path: str, *,
                     process_name: str = "virtual-mesh") -> None:
    write_trace(spans_to_chrome_trace(spans, process_name=process_name),
                path)
