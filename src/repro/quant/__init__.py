"""Int8 weight quantization (Section 3.6)."""

from repro.quant.int8 import (
    INT8_MAX,
    activation_roundtrip_error,
    quantize_activations,
    QuantizedTensor,
    model_weight_bytes,
    quantization_error,
    pack_int4,
    quantize,
    quantize_nbit,
    quantize_model_weights,
    quantized_matmul,
    unpack_int4,
)

__all__ = [
    "INT8_MAX",
    "activation_roundtrip_error",
    "quantize_activations",
    "QuantizedTensor",
    "model_weight_bytes",
    "quantization_error",
    "pack_int4",
    "quantize",
    "quantize_nbit",
    "quantize_model_weights",
    "quantized_matmul",
    "unpack_int4",
]
