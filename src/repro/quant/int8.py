"""Int8 weight quantization (Section 3.6, AQT-style).

Weights are stored as int8 with a per-output-channel symmetric scale and
dequantized on the fly; matmul arithmetic stays in the original float type
(the paper notes the matmuls still use bfloat16, which is why int8 is
cost-neutral at large batch).  The memory and communication benefit is the
halved byte width, which the performance model picks up through
``weight_dtype_bytes=1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

INT8_MAX = 127


@dataclass(frozen=True)
class QuantizedTensor:
    """An int8 tensor with per-channel scales along one axis."""

    values: np.ndarray   # int8
    scales: np.ndarray   # float, shape = values.shape with axis -> 1
    axis: int            # the channel axis the scales vary over

    @property
    def nbytes(self) -> int:
        return self.values.nbytes + self.scales.nbytes

    def dequantize(self) -> np.ndarray:
        return self.values.astype(self.scales.dtype) * self.scales


def quantize(weights: np.ndarray, axis: int = -1) -> QuantizedTensor:
    """Symmetric per-channel int8 quantization.

    ``axis`` is the output-channel axis (each slice along every *other*
    axis shares a scale).  Zero channels get scale 1 to avoid division by
    zero (their values quantize to 0 exactly).
    """
    axis = axis % weights.ndim
    reduce_axes = tuple(i for i in range(weights.ndim) if i != axis)
    max_abs = np.max(np.abs(weights), axis=reduce_axes, keepdims=True)
    scales = np.where(max_abs > 0, max_abs / INT8_MAX, 1.0)
    values = np.clip(np.round(weights / scales), -INT8_MAX,
                     INT8_MAX).astype(np.int8)
    return QuantizedTensor(values=values, scales=scales, axis=axis)


def quantization_error(weights: np.ndarray, axis: int = -1) -> float:
    """Max elementwise absolute error of a quantize/dequantize round trip."""
    q = quantize(weights, axis)
    return float(np.max(np.abs(q.dequantize() - weights)))


def quantized_matmul(x: np.ndarray, w: QuantizedTensor) -> np.ndarray:
    """``x @ dequantize(w)`` with the scale applied after the int matmul.

    For per-output-channel scales this is exact (the scale factors out of
    the contraction), mirroring how fused dequant kernels avoid
    materializing the float weights.
    """
    if w.values.ndim != 2:
        raise ValueError("quantized_matmul expects a 2D weight")
    if w.axis == 1:
        # Scales constant along the contraction: factor out.
        return (x @ w.values.astype(x.dtype)) * w.scales.reshape(1, -1)
    # Scales vary along the contraction axis: fold them into x instead.
    return (x * w.scales.reshape(1, -1)) @ w.values.astype(x.dtype)


def quantize_model_weights(weights, axis_for: dict[str, int] | None = None):
    """Quantize every projection matrix of a ``TransformerWeights``.

    Returns ``{layer_index: {name: QuantizedTensor}}``; embeddings and
    norm scales stay in float (they are tiny).  The per-tensor channel
    axis is the output axis of each projection.
    """
    default_axes = {"wq": 1, "wk": 1, "wv": 1, "wo": 2, "w_in": 1,
                    "w_gate": 1, "w_out": 1}
    axis_for = axis_for or default_axes
    quantized: dict[int, dict[str, QuantizedTensor]] = {}
    for i, layer in enumerate(weights.layers):
        per_layer = {}
        for name, axis in axis_for.items():
            tensor = getattr(layer, name, None)
            if tensor is None:
                continue
            flat = tensor.reshape(tensor.shape[0], -1) \
                if tensor.ndim > 2 and axis == 1 else tensor
            if tensor.ndim == 3:
                # Project [E, H, D] -> [E, H*D] (or [H, D, E] -> [H*D, E])
                # so channels are the true output columns.
                if name == "wo":
                    flat = tensor.reshape(-1, tensor.shape[-1])
                    axis = 1
                else:
                    flat = tensor.reshape(tensor.shape[0], -1)
                    axis = 1
            per_layer[name] = quantize(flat, axis)
        quantized[i] = per_layer
    return quantized


def model_weight_bytes(quantized: dict) -> int:
    """Total stored bytes of a quantized weight set (values + scales)."""
    return sum(q.nbytes for per_layer in quantized.values()
               for q in per_layer.values())


def quantize_activations(x: np.ndarray) -> QuantizedTensor:
    """Dynamic per-token int8 activation quantization (Section 3.6).

    The paper leaves activation quantization as future work ("we are
    hopeful that it could reduce compute time in large-batch
    configurations and reduce communication volume of activations in
    weight-stationary layouts"); this implements the standard dynamic
    scheme — one symmetric scale per token (row) — so the communication
    claim can be exercised end to end (``act_dtype_bytes=1`` in the
    estimator) and the numerics error quantified.
    """
    if x.ndim < 2:
        raise ValueError("activations must have a trailing feature axis")
    flat = x.reshape(-1, x.shape[-1])
    return quantize(flat, axis=0)


def activation_roundtrip_error(x: np.ndarray) -> float:
    """Max relative error of an int8 activation round trip, per token."""
    flat = x.reshape(-1, x.shape[-1])
    q = quantize_activations(x)
    err = np.abs(q.dequantize() - flat)
    denom = np.maximum(np.abs(flat).max(axis=1, keepdims=True), 1e-12)
    return float((err / denom).max())


def quantize_nbit(weights: np.ndarray, bits: int,
                  axis: int = -1) -> QuantizedTensor:
    """Symmetric per-channel quantization at an arbitrary bit width.

    The paper's quantization reference (Abdolrashidi et al., 2021) finds
    4-bit weights Pareto-optimal for some models; this generalizes the
    int8 path so the cost model can be driven with ``weight_dtype_bytes=
    bits / 8``.  Values are held in an int8 container (range clamped to
    the n-bit grid); :func:`pack_int4` stores two 4-bit values per byte
    for real footprint measurements.
    """
    if not 2 <= bits <= 8:
        raise ValueError("bits must be in [2, 8]")
    qmax = 2 ** (bits - 1) - 1
    axis = axis % weights.ndim
    reduce_axes = tuple(i for i in range(weights.ndim) if i != axis)
    max_abs = np.max(np.abs(weights), axis=reduce_axes, keepdims=True)
    scales = np.where(max_abs > 0, max_abs / qmax, 1.0)
    values = np.clip(np.round(weights / scales), -qmax,
                     qmax).astype(np.int8)
    return QuantizedTensor(values=values, scales=scales, axis=axis)


def pack_int4(values: np.ndarray) -> np.ndarray:
    """Pack int4 values (range [-7, 7], stored as int8) two per byte."""
    flat = values.reshape(-1)
    if flat.size % 2:
        raise ValueError("int4 packing needs an even element count")
    if flat.min() < -7 or flat.max() > 7:
        raise ValueError("values outside the int4 grid [-7, 7]")
    unsigned = (flat.astype(np.int16) + 8).astype(np.uint8)
    return (unsigned[0::2] << 4 | unsigned[1::2]).astype(np.uint8)


def unpack_int4(packed: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Invert :func:`pack_int4` back to int8 values of ``shape``."""
    high = (packed >> 4).astype(np.int16) - 8
    low = (packed & 0x0F).astype(np.int16) - 8
    flat = np.empty(packed.size * 2, dtype=np.int8)
    flat[0::2] = high.astype(np.int8)
    flat[1::2] = low.astype(np.int8)
    return flat.reshape(shape)
