"""The per-replica KV store: match / install / commit / release.

``KVStore`` glues the radix index to the serving path.  One store per
replica holds sealed :class:`~repro.kvstore.arena.Page` objects and the
:class:`~repro.kvstore.radix.RadixIndex` over them; ``chunked_prefill``
consults it before computing anything:

1. ``match(prompt)`` — pin (refcount) the longest cached whole-page
   prefix and return a :class:`PageLease`.  The match is capped at
   ``len(prompt) - 1`` tokens so at least the final prompt token is
   always recomputed — the prefill must still produce last-token
   logits.
2. ``install(lease, caches)`` — write the pinned pages into freshly
   allocated caches (global bytes -> ``load_prefix``, exactly the
   Section 4.4 host-mediated transfer), setting ``cache.length`` so the
   model's position arithmetic resumes at the cached offset.
3. compute only the uncached suffix (the caller's loop);
4. ``commit(prompt, caches)`` — seal every *new* whole page of the
   finished prefill into the index (shared prefixes dedup), then evict
   LRU unpinned pages if over capacity.
5. ``release(lease)`` — unpin, once the decode slot retires.

Pages hold global (unsharded) bytes, so a hit is bit-identical to the
recompute path on every backend and across mesh shapes — asserted by
the differential tests.  ``invalidate`` mirrors the step compiler:
restarts and replans drop the index (an epoch bump); leases taken
before the bump release as no-ops (``stale_releases``).  ``adopt``
registers another store's pages by reference (the disaggregated
handoff's Mooncake-style shared store).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kvstore.arena import Page
from repro.kvstore.radix import RadixIndex

#: Default page size in tokens.  Must stay a multiple of the chunked
#: prefill chunk (``repro.serving.chunked.DEFAULT_PREFILL_CHUNK``) so a
#: cached prefix always ends on a chunk boundary and the recomputed
#: suffix sees the exact same chunk partitioning as the cold path.
DEFAULT_PAGE_TOKENS = 4

#: Default per-store capacity, in pages.
DEFAULT_CAPACITY_PAGES = 256


@dataclass
class PageLease:
    """A pinned page chain: the cached prefix one prefill reuses.

    Holding a lease keeps every page's ``refcount`` positive, which the
    index's eviction respects unconditionally — a live decode slot can
    never lose its prefix.  Release exactly once; double releases are
    ignored (and surface in the store counters).
    """

    store: "KVStore"
    lease_id: int
    epoch: int
    pages: tuple[Page, ...]
    released: bool = False
    #: Set by the control plane once the lease is journaled.
    journaled: bool = field(default=False, compare=False)

    @property
    def n_pages(self) -> int:
        return len(self.pages)

    @property
    def n_tokens(self) -> int:
        return sum(p.page_tokens for p in self.pages)

    def release(self) -> bool:
        return self.store.release(self)


@dataclass
class PrefillReuse:
    """What one prefill reused: the lease plus the token split."""

    lease: PageLease | None
    matched_tokens: int
    total_tokens: int

    @property
    def computed_tokens(self) -> int:
        return self.total_tokens - self.matched_tokens

    @property
    def computed_fraction(self) -> float:
        if self.total_tokens == 0:
            return 1.0
        return self.computed_tokens / self.total_tokens


def _layer_globals(cache) -> tuple[np.ndarray, np.ndarray]:
    """One layer's filled K/V prefix in global form, any cache type."""
    if hasattr(cache, "as_sharded"):
        k_sh, v_sh = cache.as_sharded()
        return k_sh.to_global(), v_sh.to_global()
    return (np.asarray(cache.k[:, :cache.length]),
            np.asarray(cache.v[:, :cache.length]))


class KVStore:
    """Paged prefix cache for one replica.

    Deterministic by construction: the LRU clock is whatever the caller
    passes (the cluster passes virtual-time seconds), never wall time.
    """

    def __init__(self, *, page_tokens: int = DEFAULT_PAGE_TOKENS,
                 capacity_pages: int = DEFAULT_CAPACITY_PAGES,
                 name: str = "kvstore"):
        if page_tokens < 1:
            raise ValueError(f"page_tokens must be >= 1, got {page_tokens}")
        if capacity_pages < 1:
            raise ValueError(
                f"capacity_pages must be >= 1, got {capacity_pages}")
        self.page_tokens = page_tokens
        self.capacity_pages = capacity_pages
        self.name = name
        self.index = RadixIndex(page_tokens)
        self.epoch = 0
        self._clock = 0
        self._lease_counter = 0
        self._page_counter = 0
        self._active: dict[int, PageLease] = {}
        self._last_reuse: PrefillReuse | None = None
        # Counters (the stats() surface, mirroring StepCompiler.stats).
        self.lookups = 0
        self.peeks = 0
        self.hits = 0
        self.misses = 0
        self.pages_hit = 0
        self.pages_missed = 0
        self.inserts = 0
        self.adoptions = 0
        self.evictions = 0
        self.invalidations = 0
        self.invalidation_reasons: dict[str, int] = {}
        self.leases = 0
        self.releases = 0
        self.stale_releases = 0
        self.redundant_releases = 0
        self.tokens_total = 0
        self.tokens_computed = 0
        self.bytes_saved = 0

    # -- read-only queries --------------------------------------------------

    def peek(self, tokens) -> int:
        """Matched-token count for routing — no pin, no LRU touch."""
        self.peeks += 1
        usable = max((len(tokens) - 1) // self.page_tokens, 0)
        if usable == 0:
            return 0
        chain = self.index.lookup(tokens, max_pages=usable)
        return sum(p.page_tokens for p in chain)

    def lookup_pages(self, tokens) -> list[Page]:
        """Every indexed whole page of ``tokens`` (for adoption); a pure
        read like :meth:`peek` — full pages, no last-token cap."""
        return self.index.lookup(
            tokens, max_pages=len(tokens) // self.page_tokens)

    def occupancy(self) -> float:
        """Fraction of page capacity in use — an autoscaler input."""
        return self.index.n_pages / self.capacity_pages

    @property
    def pinned_pages(self) -> int:
        """Distinct pages pinned by live leases."""
        return len({id(p) for lease in self._active.values()
                    for p in lease.pages})

    # -- the serving path ---------------------------------------------------

    def _stamp(self, clock: float | None) -> float:
        """LRU timestamp: the caller's clock, or a deterministic tick."""
        if clock is None:
            self._clock += 1
            return float(self._clock)
        return clock

    def match(self, tokens, *, clock: float | None = None
              ) -> PageLease | None:
        """Pin the longest cached prefix of ``tokens``; ``None`` on miss.

        Counts the request against the hit/miss and token ledgers either
        way, so ``stats()`` reflects every prefill the store saw.
        """
        clock = self._stamp(clock)
        n = len(tokens)
        self.lookups += 1
        self.tokens_total += n
        usable = max((n - 1) // self.page_tokens, 0)
        chain = (self.index.lookup(tokens, max_pages=usable, clock=clock)
                 if usable else [])
        matched = sum(p.page_tokens for p in chain)
        self.pages_hit += len(chain)
        self.pages_missed += usable - len(chain)
        self.tokens_computed += n - matched
        if not chain:
            self.misses += 1
            return None
        self.hits += 1
        self.bytes_saved += sum(p.nbytes for p in chain)
        for page in chain:
            page.refcount += 1
        self._lease_counter += 1
        lease = PageLease(self, self._lease_counter, self.epoch,
                          tuple(chain))
        self._active[lease.lease_id] = lease
        self.leases += 1
        return lease

    def install(self, lease: PageLease, caches) -> int:
        """Write the leased prefix into fresh caches; returns its length.

        Caches may be sharded (``load_prefix``) or the reference model's
        plain numpy buffers — pages are global bytes either way.
        """
        n = lease.n_tokens
        if n == 0:
            return 0
        n_layers = len(lease.pages[0].k)
        if len(caches) != n_layers:
            raise ValueError(f"store pages span {n_layers} layers, model "
                             f"has {len(caches)}")
        for layer, cache in enumerate(caches):
            k_g = np.concatenate([p.k[layer] for p in lease.pages], axis=1)
            v_g = np.concatenate([p.v[layer] for p in lease.pages], axis=1)
            if hasattr(cache, "load_prefix"):
                from repro.mesh import ShardedTensor

                k_t = ShardedTensor.from_global(cache.mesh, k_g, cache.spec)
                v_t = ShardedTensor.from_global(cache.mesh, v_g, cache.spec)
                cache.load_prefix(k_t, v_t, n)
            else:
                cache.k[:, :n] = k_g
                cache.v[:, :n] = v_g
                cache.length = n
        return n

    def commit(self, tokens, caches, *, clock: float | None = None) -> int:
        """Seal the finished prefill's new whole pages into the index.

        Pages the index already holds are shared, not duplicated; only
        the novel suffix is extracted from the caches.  Returns the
        number of pages added.  Over capacity, LRU unpinned pages are
        evicted (pinned pages survive regardless).
        """
        clock = self._stamp(clock)
        full = len(tokens) // self.page_tokens
        if full == 0:
            return 0
        existing = self.index.lookup(tokens, max_pages=full)
        if len(existing) == full:
            return 0
        pages: list[Page] = list(existing)
        globals_per_layer = [_layer_globals(c) for c in caches]
        for pidx in range(len(existing), full):
            start = pidx * self.page_tokens
            stop = start + self.page_tokens
            span = tuple(int(t) for t in tokens[start:stop])
            k_page = tuple(np.ascontiguousarray(k_g[:, start:stop])
                           for k_g, _ in globals_per_layer)
            v_page = tuple(np.ascontiguousarray(v_g[:, start:stop])
                           for _, v_g in globals_per_layer)
            self._page_counter += 1
            pages.append(Page(self._page_counter, span, k_page, v_page))
        added = self.index.insert(tokens, pages, clock=clock)
        self.inserts += added
        self._enforce_capacity()
        return added

    def adopt(self, tokens, pages, *, clock: float | None = None) -> int:
        """Index another store's sealed pages by reference (handoff)."""
        added = self.index.insert(tokens, pages, clock=self._stamp(clock))
        self.adoptions += added
        self._enforce_capacity()
        return added

    def release(self, lease: PageLease) -> bool:
        """Unpin a lease; idempotent (the second call is a no-op)."""
        if lease.released:
            self.redundant_releases += 1
            return False
        lease.released = True
        self._active.pop(lease.lease_id, None)
        if lease.epoch != self.epoch:
            self.stale_releases += 1
        for page in lease.pages:
            page.refcount = max(page.refcount - 1, 0)
        self.releases += 1
        return True

    # -- bookkeeping hooks for chunked_prefill ------------------------------

    def finish_prefill(self, reuse: PrefillReuse) -> None:
        """Record the just-finished prefill's reuse outcome."""
        self._last_reuse = reuse

    def take_last_reuse(self) -> PrefillReuse | None:
        """Pop the outcome of the most recent prefill (single consumer)."""
        reuse, self._last_reuse = self._last_reuse, None
        return reuse

    # -- lifecycle ----------------------------------------------------------

    def invalidate(self, reason: str = "explicit") -> None:
        """Drop the index (epoch bump) — restart/replan, like capture.

        Live leases stay pinned in memory until released; their release
        after the bump counts as ``stale_releases`` and is a no-op on
        the (new, empty) index.
        """
        self.epoch += 1
        self.index.clear()
        self.invalidations += 1
        self.invalidation_reasons[reason] = \
            self.invalidation_reasons.get(reason, 0) + 1

    def _enforce_capacity(self) -> None:
        over = self.index.n_pages - self.capacity_pages
        if over > 0:
            self.evictions += len(self.index.evict(over))

    def stats(self) -> dict:
        """Counter snapshot (the ``repro-inference metrics`` surface)."""
        cacheable = self.pages_hit + self.pages_missed
        return {
            "pages": self.index.n_pages,
            "capacity_pages": self.capacity_pages,
            "page_tokens": self.page_tokens,
            "lookups": self.lookups,
            "peeks": self.peeks,
            "hits": self.hits,
            "misses": self.misses,
            "pages_hit": self.pages_hit,
            "pages_missed": self.pages_missed,
            "hit_rate": (self.pages_hit / cacheable) if cacheable else 0.0,
            "inserts": self.inserts,
            "adoptions": self.adoptions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "invalidation_reasons": dict(self.invalidation_reasons),
            "leases": self.leases,
            "releases": self.releases,
            "stale_releases": self.stale_releases,
            "redundant_releases": self.redundant_releases,
            "pinned_pages": self.pinned_pages,
            "tokens_total": self.tokens_total,
            "tokens_computed": self.tokens_computed,
            "bytes_saved": self.bytes_saved,
            "occupancy": self.occupancy(),
        }
