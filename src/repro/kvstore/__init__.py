"""KVCache-centric prefix sharing: paged KV store + radix reuse.

At million-user scale most prefill compute is redundant — requests share
system prompts and conversation prefixes, yet a naive server recomputes
every prompt into a freshly allocated cache.  This package trades more
storage for less computation (the Mooncake recipe) on top of the
Section 3.3 sharded KV cache:

* :mod:`repro.kvstore.arena` — sealed, refcounted, copy-on-write KV
  *pages* (host-side, layout-independent) and the device-buffer arena
  that recycles ``ShardedKVCache`` allocations between requests;
* :mod:`repro.kvstore.radix` — the token-id radix index mapping prompt
  prefixes to page chains, with LRU-by-last-use eviction that never
  frees a pinned page;
* :mod:`repro.kvstore.store` — the per-replica facade the serving and
  cluster layers consume: ``match`` (pin a cached prefix), ``install``
  (write it into fresh caches), ``commit`` (seal a finished prefill
  into new pages) and ``release``.

The contract mirrors the step compiler's: every cache hit must be
bit-identical to the recompute path, and chaos/failover invalidate the
store exactly like captured programs.
"""

from repro.kvstore.arena import KVBufferArena, Page
from repro.kvstore.radix import RadixIndex
from repro.kvstore.store import (
    DEFAULT_PAGE_TOKENS,
    KVStore,
    PageLease,
    PrefillReuse,
)

__all__ = [
    "DEFAULT_PAGE_TOKENS",
    "KVBufferArena",
    "KVStore",
    "Page",
    "PageLease",
    "PrefillReuse",
    "RadixIndex",
]
