"""The paged arena: sealed KV pages + the device-buffer pool.

Two kinds of memory live here.

**Pages** are the unit of sharing: a fixed span of ``page_tokens``
token ids plus the per-layer K/V those tokens produced, stored in
*global* (unsharded) form.  KV contents are layout-independent — the
same bytes regardless of mesh shape or backend (the repo's core
bit-identity invariant) — so a page extracted on one replica installs
into any cache spec on any mesh.  Pages are sealed read-only at
creation (``setflags(write=False)``): sharing is copy-on-write by
construction, because a request that diverges from a cached prefix
never mutates the shared page — it computes fresh K/V into its own
cache and seals *new* pages for the divergent span.

**The buffer arena** recycles the dense device buffers behind
:class:`~repro.layouts.kv_cache.ShardedKVCache`: instead of a fresh
``np.zeros`` per request, a cache leases a (k, v) buffer pair keyed by
its exact device geometry and returns it when garbage collected (a
``weakref.finalize`` hook), so steady-state serving reuses a small set
of slabs instead of churning allocations.  Leased buffers are zeroed,
keeping pooled caches bit-identical to freshly allocated ones.
"""

from __future__ import annotations

import numpy as np


class Page:
    """One sealed span of KV history: ``page_tokens`` tokens x layers.

    ``k``/``v`` hold one global ``[1, page_tokens, n_kv_heads, d_head]``
    array per layer, marked read-only.  ``refcount`` counts live leases
    (decode slots pinning the page); ``last_use`` is the LRU clock.
    """

    __slots__ = ("k", "last_use", "page_id", "refcount", "tokens", "v")

    def __init__(self, page_id: int, tokens: tuple[int, ...],
                 k: tuple[np.ndarray, ...], v: tuple[np.ndarray, ...]):
        if len(k) != len(v) or not k:
            raise ValueError("need matching per-layer k/v arrays")
        for arr in (*k, *v):
            if arr.shape[1] != len(tokens):
                raise ValueError(
                    f"page arrays must span {len(tokens)} tokens, got "
                    f"{arr.shape}")
            arr.setflags(write=False)
        self.page_id = page_id
        self.tokens = tokens
        self.k = k
        self.v = v
        self.refcount = 0
        self.last_use = 0.0

    @property
    def page_tokens(self) -> int:
        return len(self.tokens)

    @property
    def nbytes(self) -> int:
        """Host bytes held by this page (both K and V, all layers)."""
        return sum(a.nbytes for a in self.k) + sum(a.nbytes for a in self.v)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Page(id={self.page_id}, tokens={self.tokens}, "
                f"refcount={self.refcount})")


def _zero(buffer: np.ndarray) -> None:
    """Zero a cache buffer in place, dense or per-device object array."""
    if buffer.dtype == object:
        for shard in buffer.flat:
            shard.fill(0)
    else:
        buffer.fill(0)


class KVBufferArena:
    """Free-list pool of (k, v) device buffer pairs, keyed by geometry.

    ``lease`` pops a matching pair (zeroed) or allocates a fresh one;
    ``reclaim`` — normally reached via the cache's ``weakref.finalize``
    — pushes the pair back.  A reused buffer is indistinguishable from a
    fresh allocation, so pooling cannot affect numerics.
    """

    def __init__(self):
        self._free: dict[tuple, list[tuple[np.ndarray, np.ndarray]]] = {}
        self.leases = 0
        self.reuses = 0
        self.allocs = 0
        self.reclaims = 0

    @staticmethod
    def _key(mesh, local: tuple[int, ...], dtype) -> tuple:
        return (mesh.backend, tuple(mesh.shape), tuple(local),
                np.dtype(dtype).str)

    def lease(self, mesh, local: tuple[int, ...], dtype
              ) -> tuple[tuple, np.ndarray, np.ndarray]:
        """A zeroed (k, v) pair for ``mesh``'s geometry; returns
        ``(key, k, v)`` — pass ``key`` back to :meth:`reclaim`."""
        key = self._key(mesh, local, dtype)
        free = self._free.get(key)
        if free:
            k, v = free.pop()
            _zero(k)
            _zero(v)
            self.reuses += 1
        else:
            if mesh.backend == "stacked":
                k = np.zeros(mesh.shape + tuple(local), dtype=dtype)
                v = np.zeros(mesh.shape + tuple(local), dtype=dtype)
            else:
                k = mesh.map_devices(
                    lambda c: np.zeros(local, dtype=dtype))
                v = mesh.map_devices(
                    lambda c: np.zeros(local, dtype=dtype))
            self.allocs += 1
        self.leases += 1
        return key, k, v

    def reclaim(self, key: tuple, k: np.ndarray, v: np.ndarray) -> None:
        """Return a leased pair to the free list."""
        self._free.setdefault(key, []).append((k, v))
        self.reclaims += 1

    def clear(self) -> None:
        """Drop all pooled buffers (mesh geometry changed / restart)."""
        self._free.clear()

    def stats(self) -> dict:
        pooled = sum(len(pairs) for pairs in self._free.values())
        return {
            "arena_leases": self.leases,
            "arena_reuses": self.reuses,
            "arena_allocs": self.allocs,
            "arena_reclaims": self.reclaims,
            "arena_pooled_buffers": pooled,
        }
