"""Token-id radix index: prompt prefixes -> KV page chains.

The index is page-granular: every edge is a fixed-size tuple of
``page_tokens`` token ids, so a path from the root spells out a prompt
prefix in whole pages and each node on the path owns the page holding
that span's K/V.  Lookup is longest-prefix by construction — walk edges
until one is missing — which makes the brute-force oracle in the
property tests trivial to state: the chain returned for ``tokens`` must
equal the longest inserted chain that prefixes ``tokens``.

Eviction is LRU by ``last_use`` over *leaf* pages only (an interior page
is, by definition, the prefix of a longer cached prompt — freeing it
would orphan its suffix pages) and never touches a page with a live
lease (``refcount > 0``), the pinned-page invariant the decode slots
rely on.
"""

from __future__ import annotations


class _Node:
    """One radix node: the page for its edge plus child edges."""

    __slots__ = ("children", "page")

    def __init__(self, page=None):
        self.page = page
        self.children: dict[tuple, _Node] = {}


class RadixIndex:
    """Radix tree over whole-page token spans.

    Pages are any objects exposing ``refcount``, ``last_use`` and a
    stable ``page_id`` (see :class:`repro.kvstore.arena.Page`); the
    index never mutates page contents, only the LRU clock.
    """

    def __init__(self, page_tokens: int):
        if page_tokens < 1:
            raise ValueError(f"page_tokens must be >= 1, got {page_tokens}")
        self.page_tokens = page_tokens
        self._root = _Node()
        self.n_pages = 0

    def _edges(self, tokens):
        """Whole-page token tuples of ``tokens``, in order."""
        pt = self.page_tokens
        for start in range(0, (len(tokens) // pt) * pt, pt):
            yield tuple(int(t) for t in tokens[start:start + pt])

    def lookup(self, tokens, *, max_pages: int | None = None,
               clock: float | None = None) -> list:
        """Longest whole-page prefix of ``tokens`` as a page chain.

        With ``clock`` the matched pages' ``last_use`` is refreshed (a
        cache hit); without it the walk is a pure read (routing peeks
        must not perturb eviction order).
        """
        node = self._root
        chain: list = []
        for edge in self._edges(tokens):
            if max_pages is not None and len(chain) >= max_pages:
                break
            child = node.children.get(edge)
            if child is None:
                break
            chain.append(child.page)
            node = child
        if clock is not None:
            for page in chain:
                page.last_use = clock
        return chain

    def insert(self, tokens, pages, *, clock: float = 0.0) -> int:
        """Index ``pages`` (one per whole page of ``tokens``); returns
        the number of *new* pages attached (shared prefixes dedup)."""
        pages = list(pages)
        n_whole = len(tokens) // self.page_tokens
        if len(pages) != n_whole:
            raise ValueError(
                f"need {n_whole} pages for {len(tokens)} tokens at "
                f"page_tokens={self.page_tokens}, got {len(pages)}")
        node = self._root
        added = 0
        for edge, page in zip(self._edges(tokens), pages):
            child = node.children.get(edge)
            if child is None:
                child = _Node(page)
                node.children[edge] = child
                page.last_use = clock
                added += 1
                self.n_pages += 1
            node = child
        return added

    def pages(self) -> list:
        """Every indexed page (walk order, for stats and tests)."""
        out: list = []

        def walk(node: _Node) -> None:
            for child in node.children.values():
                out.append(child.page)
                walk(child)

        walk(self._root)
        return out

    def _leaves(self) -> list[tuple[_Node, tuple, _Node]]:
        """All ``(parent, edge, leaf)`` triples."""
        out: list[tuple[_Node, tuple, _Node]] = []

        def walk(node: _Node) -> None:
            for edge, child in node.children.items():
                if child.children:
                    walk(child)
                else:
                    out.append((node, edge, child))

        walk(self._root)
        return out

    def evict(self, n_pages: int) -> list:
        """Drop up to ``n_pages`` unpinned leaf pages, LRU-first.

        Returns the evicted pages.  Stops early when every remaining
        leaf is pinned — a page with a live lease is never freed, no
        matter the memory pressure (the caller runs over capacity
        instead).
        """
        evicted: list = []
        while len(evicted) < n_pages:
            candidates = [(parent, edge, leaf)
                          for parent, edge, leaf in self._leaves()
                          if leaf.page.refcount == 0]
            if not candidates:
                break
            parent, edge, leaf = min(
                candidates,
                key=lambda t: (t[2].page.last_use, t[2].page.page_id))
            del parent.children[edge]
            self.n_pages -= 1
            evicted.append(leaf.page)
        return evicted

    def clear(self) -> None:
        """Drop the whole index (store invalidation)."""
        self._root = _Node()
        self.n_pages = 0
