"""Closed-form analysis utilities (Appendix A derivations, Section 4.4).

The paper's pitch is that partitioning choices follow from *analytical*
reasoning rather than black-box search.  This module carries that spirit
into code: closed-form optima and crossover points, each validated against
numerical optimization in the test suite.

* :func:`ws2d_optimum` — the Appendix A.2.1 split, checked against a
  scipy minimization of the exact volume.
* :func:`weight_gathered_optimum` — the Appendix A.2.2 N*, same check.
* :func:`ws_wg_crossover_tokens` — the batch-in-tokens at which a
  weight-gathered layout overtakes 2D weight-stationary (the Figure 3
  switch points), in closed form.
* :func:`memory_compute_crossover_tokens` — the roofline batch at which
  a decode step flips from weight-loading-bound to compute-bound
  (Section 2.1's "at small batch sizes ... the time to load weights
  dominates").
* :func:`latency_scaling_exponent` — fits the paper's "approximately
  square-root relationship between model size and [minimum] latency"
  (Section 4.4) from a sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hardware.chip import ChipSpec
from repro.hardware.topology import Torus3D
from repro.model.config import ModelConfig
from repro.partitioning.ffn_costs import (
    ffn_volume,
    optimal_weight_gathered_n,
    optimal_ws2d_x,
    weight_gathered_volume,
    ws2d_volume,
)
from repro.partitioning.plan import FfnLayoutKind


@dataclass(frozen=True)
class Optimum:
    """A closed-form optimum and its value."""

    argmin: float
    value: float


def ws2d_optimum(n_chips: int, d_model: int, d_ff: int,
                 tokens: float = 1.0) -> Optimum:
    """The 2D weight-stationary split minimizing comm volume (A.2.1)."""
    x = optimal_ws2d_x(n_chips, d_model, d_ff)
    return Optimum(argmin=x,
                   value=ws2d_volume(tokens, d_model, d_ff, x,
                                     n_chips / x))


def weight_gathered_optimum(tokens: float, n_chips: int, d_model: int,
                            d_ff: int) -> Optimum:
    """The optimal weight-gather width N (A.2.2)."""
    n = optimal_weight_gathered_n(tokens, n_chips, d_ff)
    return Optimum(argmin=n,
                   value=weight_gathered_volume(tokens, d_model, d_ff,
                                                n_chips, n))


def ws_wg_crossover_tokens(torus: Torus3D, d_model: int, d_ff: int,
                           kind: FfnLayoutKind) -> float:
    """Tokens at which a weight-gathered variant overtakes WS-2D.

    Both volumes are affine in tokens — WS-2D is ``a * t`` and the
    weight-gathered variant is ``w + b * t`` with a constant weight term —
    so the crossover is ``t* = w / (a - b)``.  Returns ``inf`` if the
    weight-gathered layout never wins (its slope is not smaller).
    """
    if not kind.is_weight_gathered:
        raise ValueError(f"{kind} is not a weight-gathered layout")
    a = ffn_volume(FfnLayoutKind.WS_2D, torus, 1.0, d_model, d_ff)
    n_gathered = torus.group_size(kind.gather_axes)
    w = 2.0 * d_model * d_ff * n_gathered / torus.num_chips
    b = 2.0 * d_model / n_gathered
    if b >= a:
        return math.inf
    return w / (a - b)


def memory_compute_crossover_tokens(config: ModelConfig, chip: ChipSpec,
                                    weight_dtype_bytes: int = 2) -> float:
    """Batch-in-tokens where decode compute time equals weight-load time.

    Per chip: compute = ``2 N t / (n * peak)``; weight load = ``N * wb /
    (n * hbm)`` — the N and n cancel, so the crossover depends only on
    the chip's machine balance and the weight byte width::

        t* = (wb / 2) * peak / hbm_bandwidth

    For TPU v4 with bf16 weights this is ~229 tokens: below it, decode is
    weight-loading bound (where int8 pays off, Section 4.4); above it,
    compute-bound (where int8 is neutral).
    """
    return weight_dtype_bytes / 2.0 * chip.machine_balance


def latency_scaling_exponent(model_sizes: list[float],
                             latencies: list[float]) -> float:
    """Fit ``latency ~ params^k`` and return k (paper: k ~ 0.5)."""
    if len(model_sizes) != len(latencies) or len(model_sizes) < 2:
        raise ValueError("need >= 2 (size, latency) pairs")
    slope, _ = np.polyfit(np.log(model_sizes), np.log(latencies), 1)
    return float(slope)


def numeric_minimum(fn, lo: float, hi: float, samples: int = 20_000
                    ) -> Optimum:
    """Brute-force 1D minimizer used by tests to validate closed forms."""
    xs = np.geomspace(lo, hi, samples)
    values = np.array([fn(x) for x in xs])
    idx = int(np.argmin(values))
    return Optimum(argmin=float(xs[idx]), value=float(values[idx]))
