"""Closed-form analysis utilities (Appendix A, Section 4.4)."""

from repro.analysis.closed_forms import (
    Optimum,
    latency_scaling_exponent,
    memory_compute_crossover_tokens,
    numeric_minimum,
    weight_gathered_optimum,
    ws2d_optimum,
    ws_wg_crossover_tokens,
)

__all__ = [
    "Optimum",
    "latency_scaling_exponent",
    "memory_compute_crossover_tokens",
    "numeric_minimum",
    "weight_gathered_optimum",
    "ws2d_optimum",
    "ws_wg_crossover_tokens",
]
