"""Structured event log: the system-wide telemetry timeline.

Production serving stacks treat their behavior as a first-class,
*observable* subsystem: fault injections, detections, replans, retries,
load-shed decisions — and, since the observability layer landed,
per-request span summaries — are all recorded as structured events so
that operators (and tests) can reconstruct exactly what the system did.
:class:`EventLog` is the minimal queryable form of that: an append-only
list of :class:`Event` records, each a ``kind`` plus arbitrary
structured data.

The log is deliberately dependency-free (it sits below the mesh, serving
and observability layers) so that fault injection in
:mod:`repro.mesh.faults`, the request lifecycle in
:mod:`repro.serving.resilient`, and the span tracer in
:mod:`repro.observability.spans` (which emits ``request_span`` events)
can share one timeline.

    >>> log = EventLog()
    >>> _ = log.record("fault_detected", chip=(0, 1, 0))
    >>> _ = log.record("replanned", plan="degraded-2x1x2")
    >>> log.kinds()
    ['fault_detected', 'replanned']
    >>> log.of_kind("replanned")[0]["plan"]
    'degraded-2x1x2'
    >>> log.query(where=lambda e: e.get("chip") == (0, 1, 0))[0].kind
    'fault_detected'
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: Canonical event kinds emitted by the fault-tolerance stack.  The log
#: accepts any string kind; these constants keep emitters and tests in sync.
FAULT_INJECTED = "fault_injected"
FAULT_DETECTED = "fault_detected"
REPLANNED = "replanned"
REQUEST_RETRIED = "request_retried"
REQUEST_SHED = "request_shed"
REQUEST_COMPLETED = "request_completed"
REQUEST_FAILED = "request_failed"

#: Cluster control-plane event kinds (see :mod:`repro.cluster`).
REPLICA_HEALTH = "replica_health"
BREAKER_TRANSITION = "breaker_transition"
ADMISSION_REJECTED = "admission_rejected"
REQUEST_ADMITTED = "request_admitted"
FAILOVER = "failover"
HEDGE = "hedge"

#: Autoscaler / brownout event kinds (see :mod:`repro.cluster.autoscaler`).
AUTOSCALE_DECISION = "autoscale_decision"
REPLICA_ADDED = "replica_added"
REPLICA_REMOVED = "replica_removed"
PLAN_SWITCHED = "plan_switched"
BROWNOUT_STEP = "brownout_step"
BROWNOUT_RECOVERED = "brownout_recovered"
ADMISSION_LIMITS_CHANGED = "admission_limits_changed"

#: Disaggregated prefill/decode serving (see :mod:`repro.cluster.disagg`).
#: ``KV_HANDOFF`` carries the bytes moved and the virtual-clock transfer
#: cost priced by the Appendix A.1 link model; the pool events bracket
#: the brownout ladder's collapse-to-colocated rung.
KV_HANDOFF = "kv_handoff"
POOLS_COLLAPSED = "pools_collapsed"
POOLS_RESTORED = "pools_restored"

#: Crash-recovery control plane (see :mod:`repro.cluster.journal` and
#: :mod:`repro.cluster.audit`).  The transactional KV handoff brackets
#: each transfer with prepare/retry/commit-or-abort events; replica
#: process death surfaces as a restart/rejoin pair; a control-plane
#: crash that recovered by journal replay is announced explicitly; and
#: a bounded journal that dropped records says so *loudly* (the auditor
#: refuses to certify a truncated journal).
JOURNAL_TRUNCATED = "journal_truncated"
KV_HANDOFF_PREPARED = "kv_handoff_prepared"
KV_HANDOFF_RETRIED = "kv_handoff_retried"
KV_HANDOFF_ABORTED = "kv_handoff_aborted"
KV_HANDOFF_DEDUPED = "kv_handoff_deduped"
REPLICA_RESTARTED = "replica_restarted"
REPLICA_REJOINED = "replica_rejoined"
CONTROL_PLANE_RECOVERED = "control_plane_recovered"
POOL_QUARANTINED = "pool_quarantined"
POOL_REJOINED = "pool_rejoined"


@dataclass(frozen=True)
class Event:
    """One structured event: a kind, a sequence number, and a data dict."""

    kind: str
    seq: int
    data: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


class EventLog:
    """Append-only, queryable log of :class:`Event` records.

    ``max_events`` (optional) bounds the log to a ring buffer: once full,
    recording a new event silently drops the *oldest* one and increments
    :attr:`dropped`.  Sequence numbers keep counting over the whole
    lifetime, so a bounded log's events still carry their true emission
    index.  The default stays unbounded — long chaos runs opt in.
    """

    def __init__(self, max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.events: list[Event] = []
        self.dropped = 0
        self._seq = 0

    def record(self, kind: str, **data: Any) -> Event:
        event = Event(kind=kind, seq=self._seq, data=data)
        self._seq += 1
        self.events.append(event)
        if self.max_events is not None and len(self.events) > self.max_events:
            del self.events[0]
            self.dropped += 1
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]

    def query(self, kind: str | None = None,
              where: Callable[[Event], bool] | None = None) -> list[Event]:
        """Filter events by kind and/or an arbitrary predicate."""
        out = self.events if kind is None else self.of_kind(kind)
        if where is not None:
            out = [e for e in out if where(e)]
        return list(out)

    def kinds(self) -> list[str]:
        """Event kinds in emission order (with repeats) — the timeline."""
        return [e.kind for e in self.events]

    def assert_sequence(self, *kinds: str) -> None:
        """Assert the given kinds appear in order (not necessarily
        adjacent) — the detect -> replan -> retry style assertion used by
        the fault-tolerance tests."""
        timeline = self.kinds()
        pos = 0
        for kind in kinds:
            try:
                pos = timeline.index(kind, pos) + 1
            except ValueError:
                raise AssertionError(
                    f"event sequence {kinds} not found in order; log has "
                    f"{timeline}") from None
