"""Vocab-sharded logits and distributed sampling (Section 3.5).

PaLM's 256k-token vocabulary makes the unembedding matrix and the logits
tensor large enough to shard; the paper lists "faster top-k/top-p
implementations for decode sampling" among its low-level optimizations.
This module provides the distributed counterparts on the virtual mesh:

* :func:`sharded_logits` — the unembedding einsum against a vocab-sharded
  embedding table, producing ``BV``-sharded logits.
* :func:`distributed_greedy` — argmax with only a (per-sequence) scalar
  pair exchanged per vocab shard.
* :func:`distributed_top_k` — each shard pre-selects its local top-k with
  ``np.partition`` so only ``k`` candidates per shard travel.
* :func:`distributed_sample` — exact categorical sampling via the
  Gumbel-max trick with *counter-based* noise: the per-(sequence, token)
  Gumbel perturbation is a pure hash of ``(seed, global index)``, so
  every shard generates exactly its slice and the result is bit-identical
  to sampling from the fully gathered logits (asserted in tests) — no
  all-gather of the logits required.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.ops import sharded_einsum
from repro.mesh.sharded_tensor import ShardedTensor
from repro.sharding.spec import ShardingError, ShardSpec

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (uint64 -> well-mixed uint64)."""
    with np.errstate(over="ignore"):
        z = (x + _GOLDEN).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def counter_uniform(seed: int, indices: np.ndarray) -> np.ndarray:
    """Deterministic uniforms in (0, 1) keyed by ``(seed, index)``.

    Counter-based (stateless) randomness: any shard can generate exactly
    the entries it owns, and the values are independent of the sharding.
    """
    keyed = _splitmix64(np.asarray(indices, dtype=np.uint64)
                        ^ _splitmix64(np.array(seed, dtype=np.uint64)))
    # 53-bit mantissa; +0.5 keeps the value strictly inside (0, 1).
    return ((keyed >> np.uint64(11)).astype(np.float64) + 0.5) / 2.0**53


def gumbel_noise(seed: int, indices: np.ndarray) -> np.ndarray:
    """Standard Gumbel noise keyed by ``(seed, index)``."""
    return -np.log(-np.log(counter_uniform(seed, indices)))


def sharded_logits(x: ShardedTensor, embedding: ShardedTensor
                   ) -> ShardedTensor:
    """Unembedding against a (possibly vocab-sharded) embedding table.

    ``x``: ``B?LE?`` final activations; ``embedding``: ``V?E?`` with E
    sharding matching ``x``.  Returns ``BLV`` logits sharded over the
    embedding's vocab axes (plus any carried partial sums resolved by the
    caller).
    """
    return sharded_einsum("ble,ve->blv", x, embedding)


def _global_ranges(t: ShardedTensor, dim: str):
    """Per-device (start, stop) global index range of one sharded dim."""
    mesh = t.mesh
    size = t.local_shape[t.spec.dim_index(dim)]
    ranges = {}
    for coord in mesh.devices():
        rank = mesh.rank_in_group(coord, t.spec.axes_for(dim))
        ranges[coord] = (rank * size, (rank + 1) * size)
    return ranges


def _check_logits(logits: ShardedTensor) -> None:
    if logits.spec.dims != ("B", "V"):
        raise ShardingError(f"expected BV logits, got {logits.spec}")
    if logits.spec.partial_sum:
        raise ShardingError(
            "resolve partial sums (all-reduce over the contracted axes) "
            "before sampling")
    if logits.spec.axes_for("B"):
        raise ShardingError(
            "distributed sampling expects batch-replicated logits; "
            "all-gather the batch axis first")


def distributed_greedy(logits: ShardedTensor) -> np.ndarray:
    """Argmax over vocab-sharded ``BV`` logits; returns global token ids.

    Each shard contributes one ``(max value, global argmax)`` pair per
    sequence; the cross-shard reduction is a tiny gather (2 scalars per
    sequence per shard, versus all-gathering the full vocab axis).
    """
    _check_logits(logits)
    mesh = logits.mesh
    ranges = _global_ranges(logits, "V")
    batch = logits.global_shape[0]
    best_value = np.full(batch, -np.inf)
    best_index = np.zeros(batch, dtype=np.int64)
    seen = set()
    for coord in mesh.devices():
        rank = mesh.rank_in_group(coord, logits.spec.axes_for("V"))
        if rank in seen:
            continue  # replicas carry identical data
        seen.add(rank)
        shard = logits.shards[coord]
        local_arg = np.argmax(shard, axis=1)
        local_val = shard[np.arange(batch), local_arg]
        better = local_val > best_value
        best_value = np.where(better, local_val, best_value)
        best_index = np.where(better, local_arg + ranges[coord][0],
                              best_index)
    return best_index


def distributed_top_k(logits: ShardedTensor, k: int
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Global top-k via per-shard pre-selection.

    Returns ``(values, indices)`` of shape ``[B, k]``, sorted descending —
    identical to a top-k over the gathered logits.  Communication is
    ``k`` candidate pairs per shard instead of the whole vocab shard.
    """
    _check_logits(logits)
    if k < 1:
        raise ValueError("k must be >= 1")
    mesh = logits.mesh
    ranges = _global_ranges(logits, "V")
    batch = logits.global_shape[0]
    candidate_values, candidate_indices = [], []
    seen = set()
    for coord in mesh.devices():
        rank = mesh.rank_in_group(coord, logits.spec.axes_for("V"))
        if rank in seen:
            continue
        seen.add(rank)
        shard = logits.shards[coord]
        local_k = min(k, shard.shape[1])
        top = np.argpartition(shard, -local_k, axis=1)[:, -local_k:]
        candidate_values.append(np.take_along_axis(shard, top, axis=1))
        candidate_indices.append(top + ranges[coord][0])
    values = np.concatenate(candidate_values, axis=1)
    indices = np.concatenate(candidate_indices, axis=1)
    order = np.argsort(-values, axis=1, kind="stable")[:, :k]
    # Tie-break by global index (ascending) for determinism.
    tied_sort = np.lexsort((np.take_along_axis(indices, order, axis=1),
                            -np.take_along_axis(values, order, axis=1)),
                           axis=1)
    order = np.take_along_axis(order, tied_sort, axis=1)
    return (np.take_along_axis(values, order, axis=1),
            np.take_along_axis(indices, order, axis=1))


def distributed_sample(logits: ShardedTensor, seed: int,
                       temperature: float = 1.0) -> np.ndarray:
    """Exact categorical sampling without gathering the logits.

    Gumbel-max: ``argmax(logits / T + G)`` with ``G`` standard Gumbel is
    an exact sample from ``softmax(logits / T)``.  The noise is counter-
    based, so each shard perturbs only its slice and the global argmax
    (a :func:`distributed_greedy`) finishes the job.  Bit-identical to
    perturb-then-argmax on the gathered logits with the same seed.
    """
    _check_logits(logits)
    if temperature <= 0:
        raise ValueError("temperature must be > 0")
    mesh = logits.mesh
    vocab = logits.global_shape[1]
    ranges = _global_ranges(logits, "V")
    batch = logits.global_shape[0]

    def perturb(coord):
        lo, hi = ranges[coord]
        b_idx = np.arange(batch)[:, None]
        v_idx = np.arange(lo, hi)[None, :]
        noise = gumbel_noise(seed, b_idx * vocab + v_idx)
        return logits.shards[coord] / temperature + noise

    noisy = ShardedTensor(mesh, logits.spec, logits.global_shape,
                          mesh.map_devices(perturb))
    return distributed_greedy(noisy)


def sharded_embedding_lookup(tokens: np.ndarray,
                             embedding: ShardedTensor) -> ShardedTensor:
    """Token-embedding lookup against a vocab-sharded table.

    Each chip holds rows ``[lo, hi)`` of the ``[V, E]`` table; it gathers
    the tokens that fall in its range and contributes zeros elsewhere, so
    the per-chip results are partial sums over the vocab axes — resolved
    by the caller with an all-reduce (or fused into the first block's
    collectives).  The embedding's E axes (if any) stay sharded.

    Returns ``BLE`` with partial sums over the vocab axes.
    """
    if embedding.spec.dims != ("V", "E"):
        raise ShardingError(f"expected a VE table, got {embedding.spec}")
    if tokens.ndim != 2:
        raise ShardingError("tokens must be [B, L]")
    mesh = embedding.mesh
    v_axes = embedding.spec.axes_for("V")
    ranges = _global_ranges(embedding, "V")

    def lookup(coord):
        lo, hi = ranges[coord]
        table = embedding.shards[coord]
        local = tokens - lo
        in_range = (tokens >= lo) & (tokens < hi)
        rows = table[np.clip(local, 0, hi - lo - 1)]
        return np.where(in_range[..., None], rows, 0.0)

    e_axes = embedding.spec.axes_for("E")
    spec = ShardSpec(("B", "L", "E"), ((), (), e_axes), tuple(v_axes))
    b, l = tokens.shape
    e = embedding.global_shape[1]
    return ShardedTensor(mesh, spec if v_axes else spec.with_partial_sum(()),
                         (b, l, e), mesh.map_devices(lookup))
