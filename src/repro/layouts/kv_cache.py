"""Sharded KV cache (Section 3.3).

The cache's layout is the crux of the paper's attention optimization: the
same logical ``[B, M, K, D]`` history can be

* replicated per chip (baseline multiquery, Figure 4b) — per-chip memory
  ``B * M * 2 * D``;
* sharded over heads (multihead, Figure 4a) — per-chip ``B * M * 2 * D *
  ceil(H / n)``;
* sharded over batch (optimized multiquery, Figure 4c) — per-chip reduced
  by the full chip count.

``ShardedKVCache`` stores one preallocated (k, v) buffer pair per device
under a sharding spec for the ``B`` and ``K`` dims (``M`` — the time dim —
and ``D`` are never sharded).

The buffers follow the mesh backend: an object array of per-device
buffers on the ``loop`` backend, or one dense ``mesh.shape + local``
array on the ``stacked`` backend, in which case appends and views are
single whole-mesh slice operations.

With an ``arena`` (:class:`repro.kvstore.arena.KVBufferArena`) the
buffers are *leased* from a per-replica pool instead of freshly
allocated — the cache becomes a view over pooled pages, returned to the
arena when the cache is garbage collected.  Leased buffers arrive
zeroed, so pooling is invisible to numerics; either way appends stay
single whole-mesh slice ops.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.mesh import ShardedTensor, VirtualMesh
from repro.sharding.spec import ShardingError, ShardSpec, parse


class ShardedKVCache:
    """Per-device KV history buffers under a ``BMKD`` sharding spec."""

    def __init__(self, mesh: VirtualMesh, spec: ShardSpec | str,
                 batch: int, max_len: int, n_kv_heads: int, d_head: int,
                 dtype=np.float64, arena=None):
        if isinstance(spec, str):
            spec = parse(spec)
        if spec.dims != ("B", "M", "K", "D"):
            raise ShardingError(
                f"KV cache spec must have dims BMKD, got {spec}")
        if spec.axes_for("M") or spec.axes_for("D") or spec.partial_sum:
            raise ShardingError(
                f"KV cache shards only B and K, got {spec}")
        spec.validate(mesh.topology)
        self.mesh = mesh
        self.spec = spec
        self.dtype = np.dtype(dtype)
        self.global_shape = (batch, max_len, n_kv_heads, d_head)
        local = spec.local_shape(self.global_shape, mesh.topology)
        if arena is not None:
            key, self.k, self.v = arena.lease(mesh, local, dtype)
            # Return the buffers when this cache dies; finalize keeps
            # them alive until then, so views stay valid for our
            # lifetime and the arena re-zeroes on the next lease.
            self._reclaimer = weakref.finalize(
                self, arena.reclaim, key, self.k, self.v)
        elif mesh.backend == "stacked":
            self.k = np.zeros(mesh.shape + local, dtype=dtype)
            self.v = np.zeros(mesh.shape + local, dtype=dtype)
        else:
            self.k = mesh.map_devices(lambda c: np.zeros(local, dtype=dtype))
            self.v = mesh.map_devices(lambda c: np.zeros(local, dtype=dtype))
        self.length = 0

    @property
    def is_stacked(self) -> bool:
        return self.k.dtype != object

    @property
    def max_len(self) -> int:
        return self.global_shape[1]

    @property
    def room(self) -> int:
        """Unfilled positions left — the fused-window boundary clamp."""
        return self.max_len - self.length

    def per_chip_bytes(self) -> int:
        """Per-chip KV memory — the quantity Table 1 budgets against.

        Computed from the local shard shape, not by indexing the buffer
        (whose leading axes are the mesh shape, so indexing would bake
        in an assumed mesh rank).
        """
        local = self.spec.local_shape(self.global_shape,
                                      self.mesh.topology)
        return 2 * int(np.prod(local)) * self.dtype.itemsize

    def _check_compatible(self, t: ShardedTensor) -> None:
        # New K/V tensors arrive as B?L?K?D with L = tokens being appended.
        if t.spec.dims != ("B", "L", "K", "D"):
            raise ShardingError(
                f"appended tensor must be BLKD, got {t.spec}")
        for cache_dim, new_dim in (("B", "B"), ("K", "K")):
            if t.spec.axes_for(new_dim) != self.spec.axes_for(cache_dim):
                raise ShardingError(
                    f"appended {new_dim} sharding {t.spec} does not match "
                    f"cache layout {self.spec}")
        if t.spec.partial_sum:
            raise ShardingError("cannot append partial sums to the cache")

    def append(self, k_new: ShardedTensor, v_new: ShardedTensor) -> int:
        """Append new tokens' K/V; returns the query offset (old length)."""
        self._check_compatible(k_new)
        self._check_compatible(v_new)
        n = k_new.dim_size("L")
        if self.length + n > self.max_len:
            raise ShardingError(
                f"KV cache overflow: {self.length} + {n} > {self.max_len}")
        start, stop = self.length, self.length + n
        stacked = self.is_stacked and k_new.is_stacked and v_new.is_stacked
        if stacked:
            # One whole-mesh write: M is dense axis 4 (after the three
            # device axes and B).
            self.k[:, :, :, :, start:stop] = k_new.shards
            self.v[:, :, :, :, start:stop] = v_new.shards
        else:
            for coord in self.mesh.devices():
                self.k[coord][:, start:stop] = k_new.shards[coord]
                self.v[coord][:, start:stop] = v_new.shards[coord]
        offset = self.length
        self.length = stop

        recorder = getattr(self.mesh, "capture", None)
        if recorder is not None and recorder.recording:
            idx = recorder.cache_index(self)
            if idx is not None:
                def replay(ctx, ks, vs, idx=idx, n=n, stacked=stacked):
                    cache = ctx.caches[idx]
                    if cache.length + n > cache.max_len:
                        raise ShardingError(
                            f"KV cache overflow: {cache.length} + {n} > "
                            f"{cache.max_len}")
                    s, e = cache.length, cache.length + n
                    if stacked:
                        cache.k[:, :, :, :, s:e] = ks
                        cache.v[:, :, :, :, s:e] = vs
                    else:
                        for coord in cache.mesh.devices():
                            cache.k[coord][:, s:e] = ks[coord]
                            cache.v[coord][:, s:e] = vs[coord]
                    cache.length = e

                recorder.record(replay, (recorder.CTX, k_new.shards,
                                         v_new.shards), None, "kv_append")
        return offset

    def load_prefix(self, k_t: ShardedTensor, v_t: ShardedTensor,
                    length: int) -> None:
        """Fill positions ``[0, length)`` from sharded ``[B, M, K, D]``
        tensors whose M extent is ``length`` (cache hand-off/resharding)."""
        if self.is_stacked and k_t.is_stacked and v_t.is_stacked:
            self.k[:, :, :, :, :length] = k_t.shards
            self.v[:, :, :, :, :length] = v_t.shards
        else:
            for coord in self.mesh.devices():
                self.k[coord][:, :length] = k_t.shards[coord]
                self.v[coord][:, :length] = v_t.shards[coord]
        self.length = length

    def views(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-device ``[B_loc, length, K_loc, D]`` views — an object array
        on the loop backend, a dense view on the stacked one."""
        if self.is_stacked:
            k_view = self.k[:, :, :, :, :self.length]
            v_view = self.v[:, :, :, :, :self.length]

            def replay_k(ctx, idx=None):
                cache = ctx.caches[idx]
                return cache.k[:, :, :, :, :cache.length]

            def replay_v(ctx, idx=None):
                cache = ctx.caches[idx]
                return cache.v[:, :, :, :, :cache.length]
        else:
            length = self.length
            k_view = self.mesh.map_devices(lambda c: self.k[c][:, :length])
            v_view = self.mesh.map_devices(lambda c: self.v[c][:, :length])

            def replay_k(ctx, idx=None):
                cache = ctx.caches[idx]
                return cache.mesh.map_devices(
                    lambda c: cache.k[c][:, :cache.length])

            def replay_v(ctx, idx=None):
                cache = ctx.caches[idx]
                return cache.mesh.map_devices(
                    lambda c: cache.v[c][:, :cache.length])

        recorder = getattr(self.mesh, "capture", None)
        if recorder is not None and recorder.recording:
            idx = recorder.cache_index(self)
            if idx is not None:
                recorder.record(lambda ctx: replay_k(ctx, idx),
                                (recorder.CTX,), k_view, "kv_view_k")
                recorder.record(lambda ctx: replay_v(ctx, idx),
                                (recorder.CTX,), v_view, "kv_view_v")
        return k_view, v_view

    def as_sharded(self) -> tuple[ShardedTensor, ShardedTensor]:
        """The filled prefix as proper sharded tensors (for inspection)."""
        shape = (self.global_shape[0], self.length, *self.global_shape[2:])
        k_view, v_view = self.views()
        spec = ShardSpec(("B", "M", "K", "D"), self.spec.axes)
        return (ShardedTensor(self.mesh, spec, shape, k_view),
                ShardedTensor(self.mesh, spec, shape, v_view))
