"""Small building blocks shared by the partitioned layer implementations."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.mesh import (
    ShardedTensor,
    VirtualMesh,
    all_reduce,
    sharded_einsum,
)
from repro.model.functional import causal_mask, masked_softmax, softmax
from repro.model.rope import apply_rope
from repro.sharding.spec import ShardSpec


def _record(mesh, fn, inputs, output, label, meta=None) -> None:
    """Capture-recorder hook (duck-typed; see :mod:`repro.mesh.capture`)."""
    recorder = getattr(mesh, "capture", None)
    if recorder is not None:
        recorder.record(fn, inputs, output, label, meta=meta)


def zip_shards(out_spec: ShardSpec, out_shape: Sequence[int],
               fn: Callable[..., np.ndarray], *tensors: ShardedTensor,
               elementwise: bool = False) -> ShardedTensor:
    """Combine several sharded tensors device-wise with ``fn``.

    The caller asserts (by providing ``out_spec``) that ``fn`` is local —
    i.e. its output at each device depends only on that device's shards and
    is sharded as described.  Used for broadcast arithmetic like the
    normalization step, where specs differ in rank.

    With ``elementwise=True`` the caller additionally promises that ``fn``
    broadcasts over arbitrary leading axes; on the stacked backend it is
    then applied once to the dense shard arrays instead of per device.
    """
    mesh = tensors[0].mesh
    inputs = tuple(t.shards for t in tensors)
    if elementwise and all(t.is_stacked for t in tensors):
        shards = fn(*inputs)
        _record(mesh, fn, inputs, shards, "zip_shards")
        return ShardedTensor(mesh, out_spec, tuple(out_shape), shards)
    shards = mesh.map_devices(
        lambda c: fn(*(t.shards[c] for t in tensors)))
    _record(mesh,
            lambda *arrs: mesh.map_devices(
                lambda c: fn(*(a[c] for a in arrs))),
            inputs, shards, "zip_shards")
    return ShardedTensor(mesh, out_spec, tuple(out_shape), shards)


def sharded_rmsnorm(x: ShardedTensor, scale: ShardedTensor,
                    eps: float = 1e-6) -> ShardedTensor:
    """RMSNorm of a ``BLE`` activation whose E dim may be sharded.

    The mean-square over E requires a (tiny, per-token scalar) all-reduce
    over the axes E is sharded on — this is the layernorm communication the
    paper accepts by choosing to reduce-scatter into the hidden dimension
    (Section 3.5).
    """
    if x.spec.partial_sum:
        raise ValueError("cannot normalize a partial-sum tensor")
    e_axes = x.spec.axes_for("E")
    if scale.spec.axes_for("E") != e_axes:
        raise ValueError(
            f"norm scale sharding {scale.spec} does not match activations "
            f"{x.spec}")
    sumsq = sharded_einsum("ble,ble->bl", x, x)
    if e_axes:
        sumsq = all_reduce(sumsq, e_axes)
    e_size = x.dim_size("E")

    if x.is_stacked and sumsq.is_stacked and scale.is_stacked:
        # One whole-mesh broadcast: scale is a per-device [E_loc] vector, so
        # it needs explicit singleton B/L axes against the dense
        # [mesh..., B, L, E_loc] activations.
        def stacked_norm(xs, ss, sc):
            rms = np.sqrt(ss[..., None] / e_size + eps)
            return xs * sc[:, :, :, None, None, :] / rms

        shards = stacked_norm(x.shards, sumsq.shards, scale.shards)
        _record(x.mesh, stacked_norm,
                (x.shards, sumsq.shards, scale.shards), shards, "rmsnorm",
                meta=("rmsnorm", e_size, eps))
        return ShardedTensor(x.mesh, x.spec, x.global_shape, shards)

    def normalize(x_shard, ss_shard, scale_shard):
        rms = np.sqrt(ss_shard[..., None] / e_size + eps)
        return x_shard * scale_shard / rms

    return zip_shards(x.spec, x.global_shape, normalize, x, sumsq, scale)


def sharded_rope(x: ShardedTensor, positions: np.ndarray,
                 theta: float) -> ShardedTensor:
    """Apply RoPE to a ``[B, L, heads, D]`` sharded tensor.

    RoPE is elementwise per (position, head, dim-pair), so it is local for
    any sharding that keeps L and D unsharded (all layouts here do).
    """
    for dim in ("L", "D"):
        if x.spec.axes_for(dim):
            raise ValueError(f"RoPE requires unsharded {dim}, got {x.spec}")
    # apply_rope broadcasts over arbitrary leading axes, so on the stacked
    # backend one call covers the whole mesh.
    recorder = getattr(x.mesh, "capture", None)
    if recorder is None or not recorder.recording:
        return x.map_shards(lambda s: apply_rope(s, positions, theta),
                            elementwise=True)
    # Under capture, the generic map_shards hook would bake this step's
    # positions into the program as a constant.  Suppress it and record
    # one instruction with the positions array as a tracked input (the
    # model's position instruction recomputes it per replay).
    mesh = x.mesh
    with recorder.suppress():
        out = x.map_shards(lambda s: apply_rope(s, positions, theta),
                           elementwise=True)
    if x.is_stacked:
        replay = lambda p, s: apply_rope(s, p, theta)  # noqa: E731
        meta = ("rope", theta)
    else:
        replay = lambda p, s: mesh.map_devices(  # noqa: E731
            lambda c: apply_rope(s[c], p, theta))
        meta = None
    recorder.record(replay, (positions, x.shards), out.shards, "rope",
                    meta=meta)
    return out


def local_attention(mesh: VirtualMesh, out_spec: ShardSpec,
                    out_shape: Sequence[int],
                    q: ShardedTensor,
                    k_shards: np.ndarray, v_shards: np.ndarray,
                    q_offset: int) -> ShardedTensor:
    """Per-device causal attention over already co-located Q/K/V shards.

    ``k_shards``/``v_shards`` hold per-device ``[B, M, K, D]`` buffers (a
    view of the sharded KV cache) — object arrays on the loop backend,
    dense ``mesh.shape + local`` arrays on the stacked one.  The softmax
    and the attention matmuls are strictly local; correctness of the layout
    is therefore exactly the claim that Q and KV are sharded compatibly,
    which the calling layout establishes and the equivalence tests verify.
    """
    from repro.model.reference import attention

    if (q.is_stacked and k_shards.dtype != object
            and v_shards.dtype != object):
        # attention() is batched over its leading B axis, so folding the
        # three device axes into the batch runs the whole mesh in one call.
        def fold(dense):
            return dense.reshape((-1,) + dense.shape[4:])

        out = attention(fold(q.shards), fold(k_shards), fold(v_shards),
                        q_offset)
        b_loc = q.shards.shape[3]
        shards = out.reshape(mesh.shape + (b_loc,) + out.shape[1:])

        def replay_stacked(qs, ks, vs):
            # The decode position is step-varying: rederive it from the
            # KV view length (M - L), exactly what the model passes in.
            folded = _attention_fast(
                qs.reshape((-1,) + qs.shape[4:]),
                ks.reshape((-1,) + ks.shape[4:]),
                vs.reshape((-1,) + vs.shape[4:]),
                ks.shape[4] - qs.shape[4])
            return folded.reshape(mesh.shape + (b_loc,) + folded.shape[1:])

        _record(mesh, replay_stacked, (q.shards, k_shards, v_shards),
                shards, "attention", meta=("attention", b_loc))
        return ShardedTensor(mesh, out_spec, tuple(out_shape), shards)

    shards = mesh.map_devices(
        lambda c: attention(q.shards[c], k_shards[c], v_shards[c], q_offset))
    _record(mesh,
            lambda qs, ks, vs: mesh.map_devices(
                lambda c: attention(qs[c], ks[c], vs[c],
                                    ks[c].shape[1] - qs[c].shape[1])),
            (q.shards, k_shards, v_shards), shards, "attention")
    return ShardedTensor(mesh, out_spec, tuple(out_shape), shards)


def _attention_fast(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                    q_offset: int) -> np.ndarray:
    """Replay-path attention, bit-identical to ``reference.attention``.

    Identical computation, except the single-query decode case
    (``L == 1`` attending to its full history) skips building the causal
    mask: the mask is provably all-True there, and ``np.where`` with an
    all-True mask returns a fresh array with the same values and layout
    as ``scores`` — so the softmax bits cannot change.
    """
    h, kv = q.shape[2], k.shape[2]
    if kv != h:  # broadcast shared KV heads across the query-head groups
        b, m, d = k.shape[0], k.shape[1], k.shape[3]
        k = np.broadcast_to(k[:, :, :, None, :],
                            (b, m, kv, h // kv, d)).reshape(b, m, h, d)
        v = np.broadcast_to(v[:, :, :, None, :],
                            (b, m, kv, h // kv, d)).reshape(b, m, h, d)
    scale = 1.0 / np.sqrt(q.shape[-1])
    scores = np.einsum("blhd,bmhd->bhlm", q, k) * scale
    if q.shape[1] == 1 and q_offset + 1 == k.shape[1]:
        probs = softmax(scores, axis=-1)
    else:
        probs = masked_softmax(
            scores, causal_mask(q.shape[1], k.shape[1], q_offset))
    return np.einsum("bhlm,bmhd->blhd", probs, v)
