"""Small building blocks shared by the partitioned layer implementations."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.mesh import (
    ShardedTensor,
    VirtualMesh,
    all_reduce,
    sharded_einsum,
)
from repro.model.rope import apply_rope
from repro.sharding.spec import ShardSpec


def zip_shards(out_spec: ShardSpec, out_shape: Sequence[int],
               fn: Callable[..., np.ndarray], *tensors: ShardedTensor,
               elementwise: bool = False) -> ShardedTensor:
    """Combine several sharded tensors device-wise with ``fn``.

    The caller asserts (by providing ``out_spec``) that ``fn`` is local —
    i.e. its output at each device depends only on that device's shards and
    is sharded as described.  Used for broadcast arithmetic like the
    normalization step, where specs differ in rank.

    With ``elementwise=True`` the caller additionally promises that ``fn``
    broadcasts over arbitrary leading axes; on the stacked backend it is
    then applied once to the dense shard arrays instead of per device.
    """
    mesh = tensors[0].mesh
    if elementwise and all(t.is_stacked for t in tensors):
        shards = fn(*(t.shards for t in tensors))
        return ShardedTensor(mesh, out_spec, tuple(out_shape), shards)
    shards = mesh.map_devices(
        lambda c: fn(*(t.shards[c] for t in tensors)))
    return ShardedTensor(mesh, out_spec, tuple(out_shape), shards)


def sharded_rmsnorm(x: ShardedTensor, scale: ShardedTensor,
                    eps: float = 1e-6) -> ShardedTensor:
    """RMSNorm of a ``BLE`` activation whose E dim may be sharded.

    The mean-square over E requires a (tiny, per-token scalar) all-reduce
    over the axes E is sharded on — this is the layernorm communication the
    paper accepts by choosing to reduce-scatter into the hidden dimension
    (Section 3.5).
    """
    if x.spec.partial_sum:
        raise ValueError("cannot normalize a partial-sum tensor")
    e_axes = x.spec.axes_for("E")
    if scale.spec.axes_for("E") != e_axes:
        raise ValueError(
            f"norm scale sharding {scale.spec} does not match activations "
            f"{x.spec}")
    sumsq = sharded_einsum("ble,ble->bl", x, x)
    if e_axes:
        sumsq = all_reduce(sumsq, e_axes)
    e_size = x.dim_size("E")

    if x.is_stacked and sumsq.is_stacked and scale.is_stacked:
        # One whole-mesh broadcast: scale is a per-device [E_loc] vector, so
        # it needs explicit singleton B/L axes against the dense
        # [mesh..., B, L, E_loc] activations.
        rms = np.sqrt(sumsq.shards[..., None] / e_size + eps)
        shards = x.shards * scale.shards[:, :, :, None, None, :] / rms
        return ShardedTensor(x.mesh, x.spec, x.global_shape, shards)

    def normalize(x_shard, ss_shard, scale_shard):
        rms = np.sqrt(ss_shard[..., None] / e_size + eps)
        return x_shard * scale_shard / rms

    return zip_shards(x.spec, x.global_shape, normalize, x, sumsq, scale)


def sharded_rope(x: ShardedTensor, positions: np.ndarray,
                 theta: float) -> ShardedTensor:
    """Apply RoPE to a ``[B, L, heads, D]`` sharded tensor.

    RoPE is elementwise per (position, head, dim-pair), so it is local for
    any sharding that keeps L and D unsharded (all layouts here do).
    """
    for dim in ("L", "D"):
        if x.spec.axes_for(dim):
            raise ValueError(f"RoPE requires unsharded {dim}, got {x.spec}")
    # apply_rope broadcasts over arbitrary leading axes, so on the stacked
    # backend one call covers the whole mesh.
    return x.map_shards(lambda s: apply_rope(s, positions, theta),
                        elementwise=True)


def local_attention(mesh: VirtualMesh, out_spec: ShardSpec,
                    out_shape: Sequence[int],
                    q: ShardedTensor,
                    k_shards: np.ndarray, v_shards: np.ndarray,
                    q_offset: int) -> ShardedTensor:
    """Per-device causal attention over already co-located Q/K/V shards.

    ``k_shards``/``v_shards`` hold per-device ``[B, M, K, D]`` buffers (a
    view of the sharded KV cache) — object arrays on the loop backend,
    dense ``mesh.shape + local`` arrays on the stacked one.  The softmax
    and the attention matmuls are strictly local; correctness of the layout
    is therefore exactly the claim that Q and KV are sharded compatibly,
    which the calling layout establishes and the equivalence tests verify.
    """
    from repro.model.reference import attention

    if (q.is_stacked and k_shards.dtype != object
            and v_shards.dtype != object):
        # attention() is batched over its leading B axis, so folding the
        # three device axes into the batch runs the whole mesh in one call.
        def fold(dense):
            return dense.reshape((-1,) + dense.shape[4:])

        out = attention(fold(q.shards), fold(k_shards), fold(v_shards),
                        q_offset)
        b_loc = q.shards.shape[3]
        shards = out.reshape(mesh.shape + (b_loc,) + out.shape[1:])
        return ShardedTensor(mesh, out_spec, tuple(out_shape), shards)

    shards = mesh.map_devices(
        lambda c: attention(q.shards[c], k_shards[c], v_shards[c], q_offset))
    return ShardedTensor(mesh, out_spec, tuple(out_shape), shards)
