"""Partitioned Transformer execution on the virtual mesh (Section 3).

``ShardedTransformer`` runs the same architecture as
:class:`~repro.model.reference.ReferenceTransformer`, but partitioned
according to a :class:`~repro.partitioning.plan.LayoutPlan`.  Supported
layouts and their data flow (Figures 2, 4, 5):

**1D weight-stationary** (``WS_1D``): residual ``BLE_xyz``; activations are
all-gathered over all chips at block entry, each chip multiplies its d_ff /
head shard, and the partial outputs are reduce-scattered back into E.

**2D weight-stationary** (``WS_2D``): weights ``E_x F_zy``; block entry
all-gathers E over (y, z) only; the first matmul's output is
reduce-scattered over x into the hidden dim, the activation function is
applied, the hidden is all-gathered over x, and the second matmul's output
is reduce-scattered over (y, z) back into E.

**Weight-gathered** (``WG_X``/``WG_XY``/``WG_XYZ``): weights are *stored*
exactly as in WS_2D (so prefill and decode share storage, Section 3.2.3)
but all-gathered over 1, 2, or 3 axes just before use; activations are
batch-sharded over the gathered axes, shrinking (or eliminating) activation
communication.

**Attention** (Section 3.3): ``HEAD`` shards the KV cache over heads
(replicating it for multiquery — the baseline of Figure 4b); ``BATCH``
reshards Q/K/V over batch with an all-to-all, dividing per-chip KV memory
by the chip count (Figure 4c).  Weight-gathered layouts attend locally on
their batch shard.

**Parallel block** (Section 3.4): with ``parallel_block=True`` the
attention and FFN branches share one activation all-gather and their
partial outputs are summed *before* the single reduce-scatter — the fusion
that halves per-layer communication versus the serial formulation.

Every layout is validated numerically against the reference model in
``tests/integration/test_layout_equivalence.py``.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from repro.layouts.helpers import (
    local_attention,
    sharded_rmsnorm,
    sharded_rope,
    zip_shards,
)
from repro.layouts.kv_cache import ShardedKVCache
from repro.mesh import (
    ShardedTensor,
    VirtualMesh,
    all_gather,
    all_reduce,
    all_to_all,
    reduce_scatter,
    sharded_einsum,
    split,
)
from repro.model.config import AttentionKind, FfnKind
from repro.model.functional import swish
from repro.model.reference import LayerWeights, TransformerWeights
from repro.partitioning.plan import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.sharding.spec import parse

# Per-layout sharding geometry.  F and H store their axes with y innermost
# (order ``(z, y)``) so that weight-gathered layouts can gather the y axis
# alone (gathers remove innermost axes; see repro.mesh.ops).
_GEOMETRY = {
    FfnLayoutKind.WS_1D: dict(
        residual="BLE_xyz", e_gather=("x", "y", "z"), rs_axes=("x", "y", "z"),
        e_axes="xyz", stored_hidden=("x", "y", "z"),
        local_hidden=("x", "y", "z"), weight_e="", f_rs=None),
    FfnLayoutKind.WS_2D: dict(
        residual="BLE_xyz", e_gather=("y", "z"), rs_axes=("y", "z"),
        e_axes="xyz", stored_hidden=("z", "y"), local_hidden=("z", "y"),
        weight_e="x", f_rs=("x",)),
    FfnLayoutKind.WG_X: dict(
        residual="B_xLE_yz", e_gather=("y", "z"), rs_axes=("y", "z"),
        e_axes="yz", stored_hidden=("z", "y"), local_hidden=("z", "y"),
        weight_e="x", f_rs=None),
    FfnLayoutKind.WG_XY: dict(
        residual="B_xyLE_z", e_gather=("z",), rs_axes=("z",),
        e_axes="z", stored_hidden=("z", "y"), local_hidden=("z",),
        weight_e="x", f_rs=None),
    FfnLayoutKind.WG_XYZ: dict(
        residual="B_xyzLE", e_gather=(), rs_axes=(),
        e_axes="", stored_hidden=("z", "y"), local_hidden=(),
        weight_e="x", f_rs=None),
}

# Which (axes, dim) all-gathers convert stored weights into the layout's
# compute form (weight-gathered layouts only).
_WEIGHT_GATHERS = {
    FfnLayoutKind.WG_X: {"E": (("x",),), "FH": ()},
    FfnLayoutKind.WG_XY: {"E": (("x",),), "FH": (("y",),)},
    FfnLayoutKind.WG_XYZ: {"E": (("x",),), "FH": (("z", "y"),)},
}


def _axes_suffix(axes: str) -> str:
    return f"_{axes}" if axes else ""


class ShardedTransformer:
    """The partitioned model.  API mirrors ``ReferenceTransformer``."""

    #: Optional :class:`repro.kvstore.arena.KVBufferArena`; when a
    #: replica installs one, ``new_cache`` leases pooled device buffers
    #: instead of allocating fresh ones (set post-construction so the
    #: layouts layer stays independent of ``repro.kvstore``).
    kv_arena = None

    def __init__(self, weights: TransformerWeights, mesh: VirtualMesh,
                 plan: LayoutPlan):
        plan.validate(weights.config, mesh.topology)
        self.weights = weights
        self.config = weights.config
        self.mesh = mesh
        self.plan = plan
        geo = _GEOMETRY[plan.ffn]
        self._residual_spec = parse(geo["residual"])
        self._e_gather: tuple[str, ...] = geo["e_gather"]
        self._rs_axes: tuple[str, ...] = geo["rs_axes"]
        self._stored_hidden: tuple[str, ...] = geo["stored_hidden"]
        self._local_hidden: tuple[str, ...] = geo["local_hidden"]
        self._f_rs = geo["f_rs"]
        self._batch_axes = plan.ffn.batch_axes

        e_axes, we = geo["e_axes"], geo["weight_e"]
        h = _axes_suffix("".join(self._stored_hidden))
        we = _axes_suffix(we)
        # KV heads shard over the hidden axes when they divide evenly
        # (multihead always; GQA when wide enough); a single shared head
        # (multiquery) is replicated (Figure 4b).
        hid_group = mesh.group_size(self._stored_hidden)
        self._kv_sharded = (self.config.n_kv_heads > 1
                            and self.config.n_kv_heads % hid_group == 0)
        kv = h if self._kv_sharded else ""
        # Replicated shared-KV attention is only well defined when every
        # chip holds either all query heads (batch-sharded WS attention,
        # WG-XYZ) or a single shared head (multiquery): with query heads
        # sharded, local grouped attention would mis-align the head
        # mapping.  Reject the unsupported GQA corner explicitly.
        local_heads_sharded = (
            (plan.attention is AttentionLayoutKind.HEAD
             and not plan.ffn.is_weight_gathered and hid_group > 1)
            or (plan.ffn.is_weight_gathered
                and mesh.group_size(self._local_hidden) > 1))
        if (self.config.n_kv_heads > 1 and not self._kv_sharded
                and local_heads_sharded):
            raise ValueError(
                f"{self.config.n_kv_heads} KV heads cannot shard over the "
                f"{hid_group}-chip head group; use batch-sharded "
                f"attention, fewer head-sharding chips, or pad kv_heads")
        self._specs = {
            "ln": f"E{_axes_suffix(e_axes)}",
            "w_in": f"E{we}F{h}",
            "w_gate": f"E{we}F{h}",
            "w_out": f"F{h}E{we}",
            "wq": f"E{we}H{h}D",
            "wk": f"E{we}K{kv}D",
            "wv": f"E{we}K{kv}D",
            "wo": f"H{h}DE{we}",
        }
        self._shard_all_weights()

    # -- plan switching -------------------------------------------------------

    def with_plan(self, plan: LayoutPlan) -> "ShardedTransformer":
        """The same stored weights under a different plan.

        This is Section 3.2.3's key deployment property: the weight-
        gathered layouts store weights exactly as 2D weight-stationary
        does, "so that we can instantly switch between weight-gathered
        layout and weight-stationary layout" — prefill with one, decode
        with the other, no weight movement.  The big weight tensors are
        shared by reference; only the (E-sized) norm scales are resharded
        when the residual layout differs.

        Raises ``ValueError`` if the plans' weight storage is
        incompatible (e.g. WS-1D vs. the 2D family).
        """
        other = ShardedTransformer.__new__(ShardedTransformer)
        plan.validate(self.config, self.mesh.topology)
        other.weights = self.weights
        other.config = self.config
        other.mesh = self.mesh
        other.plan = plan
        geo = _GEOMETRY[plan.ffn]
        other._residual_spec = parse(geo["residual"])
        other._e_gather = geo["e_gather"]
        other._rs_axes = geo["rs_axes"]
        other._stored_hidden = geo["stored_hidden"]
        other._local_hidden = geo["local_hidden"]
        other._f_rs = geo["f_rs"]
        other._batch_axes = plan.ffn.batch_axes

        if other._stored_hidden != self._stored_hidden or \
                _GEOMETRY[plan.ffn]["weight_e"] != \
                _GEOMETRY[self.plan.ffn]["weight_e"]:
            raise ValueError(
                f"plans {self.plan.ffn.value} and {plan.ffn.value} do not "
                f"share weight storage; rebuild the model instead")
        other._kv_sharded = self._kv_sharded
        other._specs = dict(self._specs)
        other._specs["ln"] = f"E{_axes_suffix(geo['e_axes'])}"

        def reshard_scale(t: ShardedTensor) -> ShardedTensor:
            if str(t.spec) == other._specs["ln"]:
                return t
            return ShardedTensor.from_global(
                self.mesh, t.to_global(), other._specs["ln"])

        other.embedding = self.embedding
        other.final_ln = reshard_scale(self.final_ln)
        other.layers = []
        for layer in self.layers:
            copy = dict(layer)
            copy["ln"] = reshard_scale(layer["ln"])
            if "ln2" in copy:
                copy["ln2"] = reshard_scale(layer["ln2"])
            other.layers.append(copy)
        return other

    def reshard_cache(self, caches: "list[ShardedKVCache]",
                      target: "ShardedTransformer"
                      ) -> list[ShardedKVCache]:
        """Move KV caches into another plan's layout.

        This is the prefill-server -> decode-server cache transfer of
        Section 4.4 (host-mediated; its cost is one KV-cache-sized copy,
        paid once per request rather than per decode step).
        """
        out = []
        for cache in caches:
            k_sh, v_sh = cache.as_sharded()
            new = ShardedKVCache(
                target.mesh, target.cache_spec(), cache.global_shape[0],
                cache.max_len, cache.global_shape[2],
                cache.global_shape[3], dtype=cache.dtype)
            spec = new.spec
            k_global, v_global = k_sh.to_global(), v_sh.to_global()
            filled = ShardedTensor.from_global(
                target.mesh, k_global,
                spec.with_dim_axes("M", ()))
            filled_v = ShardedTensor.from_global(
                target.mesh, v_global, spec.with_dim_axes("M", ()))
            new.load_prefix(filled, filled_v, cache.length)
            out.append(new)
        return out

    # -- weight placement ---------------------------------------------------

    def _shard(self, array: np.ndarray, spec: str) -> ShardedTensor:
        return ShardedTensor.from_global(self.mesh, array, spec)

    def _shard_all_weights(self) -> None:
        cfg, specs = self.config, self._specs
        self.embedding = self._shard(self.weights.embedding, "VE")
        self.final_ln = self._shard(self.weights.final_ln_scale, specs["ln"])
        self.layers: list[dict[str, ShardedTensor]] = []
        for layer in self.weights.layers:
            sharded = {
                "ln": self._shard(layer.ln_scale, specs["ln"]),
                "wq": self._shard(layer.wq, specs["wq"]),
                "wk": self._shard(layer.wk, specs["wk"]),
                "wv": self._shard(layer.wv, specs["wv"]),
                "wo": self._shard(layer.wo, specs["wo"]),
                "w_in": self._shard(layer.w_in, specs["w_in"]),
                "w_out": self._shard(layer.w_out, specs["w_out"]),
            }
            if cfg.ffn is FfnKind.SWIGLU:
                sharded["w_gate"] = self._shard(layer.w_gate,
                                                specs["w_gate"])
            if not cfg.parallel_block:
                sharded["ln2"] = self._shard(layer.ln2_scale, specs["ln"])
            self.layers.append(sharded)

    def _gathered(self, w: ShardedTensor, kind: str) -> ShardedTensor:
        """All-gather a stored weight for weight-gathered layouts.

        ``kind`` is ``"E"``-only (K/V projections of a multiquery model
        have no head axis to gather) or ``"EFH"`` meaning gather both the
        E-side and the hidden-side axes.
        """
        if not self.plan.ffn.is_weight_gathered:
            return w
        gathers = _WEIGHT_GATHERS[self.plan.ffn]
        for dim in w.spec.dims:
            if dim == "E":
                for axes in gathers["E"]:
                    w = all_gather(w, axes, "E")
            elif dim in ("F", "H", "K") and kind == "EFH":
                for axes in gathers["FH"]:
                    if w.spec.axes_for(dim):
                        w = all_gather(w, axes, dim)
        return w

    # -- blocks ----------------------------------------------------------------

    @property
    def residual_spec(self):
        return self._residual_spec

    def _gather_activations(self, y: ShardedTensor) -> ShardedTensor:
        if self._e_gather:
            return all_gather(y, self._e_gather, "E")
        return y

    def _finish(self, partial: ShardedTensor) -> ShardedTensor:
        """Reduce-scatter a block output back to the residual layout."""
        if self._rs_axes:
            return reduce_scatter(partial, self._rs_axes, "E")
        return partial

    def _ffn_partial(self, yg: ShardedTensor,
                     layer: dict[str, ShardedTensor]) -> ShardedTensor:
        w_in = self._gathered(layer["w_in"], "EFH")
        w_out = self._gathered(layer["w_out"], "EFH")
        h = sharded_einsum("ble,ef->blf", yg, w_in)
        if self._f_rs:
            h = reduce_scatter(h, self._f_rs, "F")
        h = h.map_shards(swish, elementwise=True)
        if self.config.ffn is FfnKind.SWIGLU:
            gate = sharded_einsum("ble,ef->blf",
                                  yg, self._gathered(layer["w_gate"],
                                                     "EFH"))
            if self._f_rs:
                gate = reduce_scatter(gate, self._f_rs, "F")
            h = zip_shards(h.spec, h.global_shape,
                           np.multiply, h, gate,
                           elementwise=True)
        if self._f_rs:
            h = all_gather(h, self._f_rs, "F")
        return sharded_einsum("blf,fe->ble", h, w_out)

    def _attn_partial(self, yg: ShardedTensor,
                      layer: dict[str, ShardedTensor],
                      cache: ShardedKVCache,
                      positions: np.ndarray) -> ShardedTensor:
        plan, cfg = self.plan, self.config
        q = sharded_einsum("ble,ehd->blhd", yg,
                           self._gathered(layer["wq"], "EFH"))
        kv_kind = "EFH" if self._kv_sharded else "E"
        k = sharded_einsum("ble,ekd->blkd", yg,
                           self._gathered(layer["wk"], kv_kind))
        v = sharded_einsum("ble,ekd->blkd", yg,
                           self._gathered(layer["wv"], kv_kind))

        # RoPE is linear, so it may be applied to partial sums.
        theta = cfg.rope_theta
        q = sharded_rope(q, positions, theta)
        k = sharded_rope(k, positions, theta)

        batch_attention = plan.attention is AttentionLayoutKind.BATCH
        weight_e_sharded = bool(q.spec.partial_sum)
        if batch_attention and not plan.ffn.is_weight_gathered:
            # Reshard Q over batch (all-to-all, Figure 5b); K/V are
            # replicated over the head axes, so their reshard is a free
            # split (Section 3.3).
            if weight_e_sharded:
                q = reduce_scatter(q, ("x",), "B")
                k = reduce_scatter(k, ("x",), "B")
                v = reduce_scatter(v, ("x",), "B")
            if self._stored_hidden:
                q = all_to_all(q, self._stored_hidden, "H", "B")
                if self._kv_sharded:
                    # Shared-but-sharded KV heads (GQA/MHA): reshard over
                    # batch with the same all-to-all as Q.
                    k = all_to_all(k, self._stored_hidden, "K", "B")
                    v = all_to_all(v, self._stored_hidden, "K", "B")
                else:
                    # Replicated KV (multiquery): a free split.
                    k = split(k, self._stored_hidden, "B")
                    v = split(v, self._stored_hidden, "B")
        elif weight_e_sharded:
            # Head-sharded path must materialize full Q/K/V rows.
            q = all_reduce(q, ("x",))
            k = all_reduce(k, ("x",))
            v = all_reduce(v, ("x",))

        offset = cache.append(k, v)
        k_view, v_view = cache.views()
        out = local_attention(self.mesh, q.spec, q.global_shape, q,
                              k_view, v_view, offset)

        if batch_attention and not plan.ffn.is_weight_gathered:
            if self._stored_hidden:
                out = all_to_all(out, self._stored_hidden, "B", "H")
            if weight_e_sharded:
                out = all_gather(out, ("x",), "B")
        return sharded_einsum("blhd,hde->ble", out,
                              self._gathered(layer["wo"], "EFH"))

    def _block(self, x: ShardedTensor, layer: dict[str, ShardedTensor],
               cache: ShardedKVCache, positions: np.ndarray
               ) -> ShardedTensor:
        if self.config.parallel_block:
            y = self._gather_activations(sharded_rmsnorm(x, layer["ln"]))
            # Sum partials before the single reduce-scatter (Section 3.4).
            combined = (self._attn_partial(y, layer, cache, positions)
                        + self._ffn_partial(y, layer))
            return x + self._finish(combined)
        y = self._gather_activations(sharded_rmsnorm(x, layer["ln"]))
        x = x + self._finish(self._attn_partial(y, layer, cache, positions))
        y2 = self._gather_activations(sharded_rmsnorm(x, layer["ln2"]))
        return x + self._finish(self._ffn_partial(y2, layer))

    # -- caches ------------------------------------------------------------------

    def cache_spec(self) -> str:
        """The KV-cache sharding implied by the plan (Section 3.3)."""
        plan, cfg = self.plan, self.config
        hidden = "".join(self._local_hidden)
        if plan.ffn.is_weight_gathered:
            b = "".join(self._batch_axes)
            k = hidden if self._kv_sharded else ""
            return f"B{_axes_suffix(b)}MK{_axes_suffix(k)}D"
        if plan.attention is AttentionLayoutKind.BATCH:
            b_axes = ("x" + hidden) if self._specs["wq"].startswith("E_x") \
                else hidden
            return f"B_{b_axes}MKD"
        if self._kv_sharded:
            return f"BMK{_axes_suffix(hidden)}D"
        return "BMKD"  # replicated shared KV head(s) (Figure 4b)

    def new_cache(self, batch: int, max_len: int) -> list[ShardedKVCache]:
        cfg = self.config
        dtype = self.weights.embedding.dtype
        return [ShardedKVCache(self.mesh, self.cache_spec(), batch, max_len,
                               cfg.n_kv_heads, cfg.d_head, dtype=dtype,
                               arena=self.kv_arena)
                for _ in range(cfg.n_layers)]

    # -- public API -----------------------------------------------------------------

    def _tracer_phase(self, name: str):
        """Span-tracing context for a phase; no-op without a tracer."""
        tracer = getattr(self.mesh, "tracer", None)
        return tracer.phase(name) if tracer is not None else nullcontext()

    def forward(self, tokens: np.ndarray, caches: list[ShardedKVCache]
                ) -> np.ndarray:
        """Forward over ``tokens`` ``[B, L]``; returns global logits."""
        tracer = getattr(self.mesh, "tracer", None)
        recorder = getattr(self.mesh, "capture", None)
        offset = caches[0].length
        positions = np.arange(tokens.shape[1]) + offset
        # Embedding lookup is modeled host-side (a gather, not a matmul —
        # its cost is negligible next to the 2N matmul FLOPs, Section 2).
        emb = self.weights.embedding[tokens]
        if recorder is not None and recorder.recording:
            # Step-varying program entry points: the decode position and
            # the token embeddings are rederived from the replay context.
            # In a fused multi-step capture, a later sub-step's tokens
            # are themselves a tape value (the previous sub-step's
            # sampled tokens) and feed the embedding gather directly.
            seq_len = tokens.shape[1]
            recorder.record(
                lambda ctx: np.arange(seq_len) + ctx.caches[0].length,
                (recorder.CTX,), positions, "positions")
            if recorder.is_live(tokens):
                recorder.record(
                    lambda t, w=self.weights.embedding: w[t],
                    (tokens,), emb, "embed")
            else:
                recorder.record(
                    lambda ctx, w=self.weights.embedding: w[ctx.tokens],
                    (recorder.CTX,), emb, "embed")
        x = ShardedTensor.from_global(self.mesh, emb, self._residual_spec)
        for i, (layer, cache) in enumerate(zip(self.layers, caches)):
            if tracer is None:
                x = self._block(x, layer, cache, positions)
            else:
                with tracer.layer(i):
                    x = self._block(x, layer, cache, positions)
        x = sharded_rmsnorm(x, self.final_ln)
        e_axes = x.spec.axes_for("E")
        if e_axes:
            x = all_gather(x, e_axes, "E")
        logits = sharded_einsum("ble,ve->blv", x, self.embedding)
        return logits.to_global()

    def prefill(self, tokens: np.ndarray, max_len: int
                ) -> tuple[np.ndarray, list[ShardedKVCache]]:
        with self._tracer_phase("prefill"):
            caches = self.new_cache(tokens.shape[0], max_len)
            logits = self.forward(tokens, caches)
        return logits[:, -1], caches

    def decode_step(self, tokens: np.ndarray,
                    caches: list[ShardedKVCache]) -> np.ndarray:
        with self._tracer_phase("decode"):
            recorder = getattr(self.mesh, "capture", None)
            expanded = tokens[:, None]
            if recorder is not None and recorder.recording \
                    and recorder.is_live(tokens):
                # Fused sub-step: the [B] -> [B, 1] expansion of a
                # previous sub-step's sampled tokens is itself replayed.
                recorder.record(lambda t: t[:, None], (tokens,),
                                expanded, "expand_tokens")
            full = self.forward(expanded, caches)
            out = full[:, -1]
            if recorder is not None and recorder.recording:
                recorder.record(lambda f: f[:, -1], (full,), out,
                                "last_token")
            return out

    def capture_decode_step(self, tokens: np.ndarray,
                            caches: list[ShardedKVCache]):
        """One eager decode step, recorded into a replayable program.

        Returns ``(logits, program)``; see
        :func:`repro.mesh.capture.capture_decode_step`.
        """
        from repro.mesh.capture import capture_decode_step

        return capture_decode_step(self, tokens, caches)

    def generate(self, prompt: np.ndarray, n_steps: int,
                 sampler=None, rng: np.random.Generator | None = None
                 ) -> np.ndarray:
        from repro.model.sampling import greedy

        sampler = sampler or (lambda logits, rng: greedy(logits))
        rng = rng or np.random.default_rng(0)
        logits, caches = self.prefill(prompt, prompt.shape[1] + n_steps)
        tokens = [prompt]
        current = sampler(logits, rng)
        for _ in range(n_steps - 1):
            tokens.append(current[:, None])
            current = sampler(self.decode_step(current, caches), rng)
        tokens.append(current[:, None])
        return np.concatenate(tokens, axis=1)
