"""Partitioned model execution on the virtual mesh (Section 3 layouts)."""

from repro.layouts.helpers import (
    local_attention,
    sharded_rmsnorm,
    sharded_rope,
    zip_shards,
)
from repro.layouts.kv_cache import ShardedKVCache
from repro.layouts.model import ShardedTransformer
from repro.layouts.vocab import (
    distributed_greedy,
    distributed_sample,
    distributed_top_k,
    sharded_embedding_lookup,
    sharded_logits,
)

__all__ = [
    "ShardedKVCache",
    "ShardedTransformer",
    "distributed_greedy",
    "distributed_sample",
    "distributed_top_k",
    "sharded_embedding_lookup",
    "sharded_logits",
    "local_attention",
    "sharded_rmsnorm",
    "sharded_rope",
    "zip_shards",
]
