"""Analytical communication cost model (Appendix A.1).

For an all-gather over ``K`` partitions where each chip produces an output
of size ``D`` bytes::

    T = D / bandwidth * (K - 1) / K

Reduce-scatter is the same with ``D`` the per-chip *input*; an all-reduce
is one of each.  The paper usually approximates ``(K-1)/K ~ 1``; both exact
and approximate forms are provided (``exact=`` flag).  These formulas hold
for most real topologies, including the TPU torus (Chan et al., 2007).

All-to-all shifts sharding between tensor dims via direct (source,
destination) exchange; on a bidirectional torus axis each chip only injects
``D * (K-1)/K`` bytes and transfers travel ~``K/4`` of the ring, so we model
it as ``D/(4*bandwidth) * (K-1)/K`` — 4x cheaper than an all-gather of the
same payload.  The paper uses all-to-all only on tiny Q/K/V tensors
(Section 3.3), so results are insensitive to this constant; tests only rely
on it being <= the all-gather cost.

The ``*_time`` functions are pure in hashable scalars and get called once
per collective per layer inside the simulator's sweep loops, usually with a
handful of distinct argument tuples — so they are memoized with
``functools.lru_cache``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


def _factor(k: int, exact: bool) -> float:
    if k < 1:
        raise ValueError(f"group size must be >= 1, got {k}")
    if k == 1:
        return 0.0
    return (k - 1) / k if exact else 1.0


@lru_cache(maxsize=4096)
def all_gather_time(out_bytes_per_chip: float, group_size: int,
                    bandwidth: float, *, exact: bool = True,
                    alpha: float = 0.0) -> float:
    """Seconds for an all-gather producing ``out_bytes_per_chip`` per chip.

    ``alpha`` is an optional per-hop latency (the alpha-beta extension of
    the paper's pure-bandwidth Appendix A.1 model): a ring collective
    over K chips takes K-1 steps, each paying ``alpha`` regardless of
    payload — which is what makes tiny collectives latency-bound.
    """
    return (out_bytes_per_chip / bandwidth * _factor(group_size, exact)
            + alpha * (group_size - 1))


@lru_cache(maxsize=4096)
def reduce_scatter_time(in_bytes_per_chip: float, group_size: int,
                        bandwidth: float, *, exact: bool = True,
                        alpha: float = 0.0) -> float:
    """Seconds for a reduce-scatter consuming ``in_bytes_per_chip``."""
    return (in_bytes_per_chip / bandwidth * _factor(group_size, exact)
            + alpha * (group_size - 1))


@lru_cache(maxsize=4096)
def all_reduce_time(bytes_per_chip: float, group_size: int,
                    bandwidth: float, *, exact: bool = True,
                    alpha: float = 0.0) -> float:
    """Seconds for an all-reduce (reduce-scatter + all-gather)."""
    return (2 * bytes_per_chip / bandwidth * _factor(group_size, exact)
            + 2 * alpha * (group_size - 1))


@lru_cache(maxsize=4096)
def all_to_all_time(bytes_per_chip: float, group_size: int,
                    bandwidth: float, *, exact: bool = True,
                    alpha: float = 0.0) -> float:
    """Seconds for an all-to-all of ``bytes_per_chip`` per chip."""
    return (bytes_per_chip / (4 * bandwidth) * _factor(group_size, exact)
            + alpha * (group_size - 1))


@dataclass(frozen=True)
class CollectiveCost:
    """A (time, bytes) pair for aggregating layout communication costs."""

    seconds: float = 0.0
    bytes: float = 0.0

    def __add__(self, other: "CollectiveCost") -> "CollectiveCost":
        return CollectiveCost(self.seconds + other.seconds,
                              self.bytes + other.bytes)

    @classmethod
    def zero(cls) -> "CollectiveCost":
        return cls()
