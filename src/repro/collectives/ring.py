"""Ring algorithms for the collectives, built from neighbor exchanges.

Appendix A.1's cost model assumes the standard ring construction: an
all-gather over K chips proceeds in K-1 steps, each chip forwarding a
1/K-sized chunk to its ring neighbor, so the per-chip traffic is
``D * (K-1)/K``.  The paper's Looped CollectiveEinsum (Section 3.5) is
built on exactly these "async CollectivePermute" steps.

This module *implements* that construction on the virtual mesh:
:func:`collective_permute` is the only communication primitive (each chip
sends one buffer to its neighbor along a torus axis), and the ring
all-gather / reduce-scatter / all-reduce are composed from it.  Tests
verify (a) numerical equivalence with the direct implementations in
:mod:`repro.mesh.ops` and (b) that the step count and per-step traffic
match the cost model — turning Appendix A.1 from an assumption into a
measured property.

The ring routines return a :class:`RingStats` alongside the result so
benchmarks and tests can account steps and bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.ops import _require_suffix
from repro.mesh.sharded_tensor import ShardedTensor
from repro.mesh.virtual_mesh import VirtualMesh
from repro.sharding.spec import ShardingError


@dataclass
class RingStats:
    """Traffic accounting for one ring collective."""

    steps: int = 0
    bytes_sent_per_chip: int = 0

    def record(self, nbytes: int) -> None:
        self.steps += 1
        self.bytes_sent_per_chip += nbytes


def collective_permute(mesh: VirtualMesh, shards: np.ndarray, axis: str,
                       shift: int = 1) -> np.ndarray:
    """Shift per-device buffers by ``shift`` positions along a torus axis.

    Each device sends its buffer to the device ``shift`` steps ahead on
    the ring (with wraparound) — the paper's async CollectivePermute.
    Communication is strictly neighbor-to-neighbor for ``|shift| == 1``.
    """
    if axis not in mesh.axis_names:
        raise ShardingError(f"unknown axis {axis!r}")
    axis_idx = mesh.axis_indices((axis,))[0]
    if shards.dtype != object:
        # Stacked buffers: the whole ring shift is one roll of the device
        # axis (out[coord + shift] = in[coord], with wraparound).
        return np.roll(shards, shift, axis=axis_idx)
    size = mesh.axis_size(axis)
    out = mesh.empty_shards()
    for coord in mesh.devices():
        dest = list(coord)
        dest[axis_idx] = (coord[axis_idx] + shift) % size
        out[tuple(dest)] = shards[coord]
    return out


def ring_all_gather(t: ShardedTensor, axis: str, dim: str
                    ) -> tuple[ShardedTensor, RingStats]:
    """All-gather over one axis via K-1 neighbor-forwarding steps.

    Equivalent to ``repro.mesh.ops.all_gather(t, (axis,), dim)`` but
    constructed from collective-permute rounds: at step s every chip
    forwards the chunk it received at step s-1, so after K-1 steps each
    chip holds all K chunks.
    """
    mesh, spec = t.mesh, t.spec
    remaining = _require_suffix(spec.axes_for(dim), (axis,),
                                "ring_all_gather")
    dim_idx = spec.dim_index(dim)
    k = mesh.axis_size(axis)
    stats = RingStats()

    # chunks[coord] maps ring-source rank -> chunk.
    chunks = mesh.map_devices(
        lambda c: {mesh.coords_on(c, (axis,))[0]: t.shards[c]})
    in_flight = {c: t.shards[c] for c in mesh.devices()}
    for _ in range(k - 1):
        buffers = mesh.empty_shards()
        for coord in mesh.devices():
            buffers[coord] = in_flight[coord]
        stats.record(buffers[0, 0, 0].nbytes)
        shifted = collective_permute(mesh, buffers, axis, shift=1)
        axis_idx = mesh.axis_indices((axis,))[0]
        for coord in mesh.devices():
            received = shifted[coord]
            # The chunk travelled one hop; its origin rank is one behind.
            origin = (mesh.coords_on(coord, (axis,))[0]
                      - len(chunks[coord])) % k
            chunks[coord][origin] = received
            in_flight[coord] = received
        del axis_idx

    def assemble(coord):
        parts = [chunks[coord][rank] for rank in range(k)]
        return np.concatenate(parts, axis=dim_idx)

    out = ShardedTensor(mesh, spec.with_dim_axes(dim, remaining),
                        t.global_shape, mesh.map_devices(assemble))
    return out, stats


def ring_reduce_scatter(t: ShardedTensor, axis: str, dim: str
                        ) -> tuple[ShardedTensor, RingStats]:
    """Reduce-scatter over one axis via K-1 accumulate-and-forward steps.

    Each chip splits its partial-sum buffer into K chunks; running sums
    circulate the ring so that after K-1 steps chip r holds the fully
    reduced chunk r.
    """
    mesh, spec = t.mesh, t.spec
    if axis not in spec.partial_sum:
        raise ShardingError(
            f"ring_reduce_scatter axis {axis!r} is not a partial-sum axis "
            f"of {spec}")
    dim_idx = spec.dim_index(dim)
    k = mesh.axis_size(axis)
    new_partial = tuple(a for a in spec.partial_sum if a != axis)
    new_spec = spec.with_partial_sum(new_partial).with_dim_axes(
        dim, spec.axes_for(dim) + (axis,))
    stats = RingStats()

    local_chunks = mesh.map_devices(
        lambda c: [np.ascontiguousarray(chunk) for chunk in
                   np.split(t.shards[c], k, axis=dim_idx)])
    # Running sums circulate the ring; the chunk schedule is chosen so
    # that after K-1 accumulate-and-forward steps chip r holds the fully
    # reduced chunk r: chip r contributes chunk (r - s + K - 2) at step s.
    carry = mesh.map_devices(
        lambda c: local_chunks[c][(mesh.coords_on(c, (axis,))[0] - 1) % k])
    for step in range(k - 1):
        stats.record(carry[0, 0, 0].nbytes)
        shifted = collective_permute(mesh, carry, axis, shift=1)
        carry = mesh.empty_shards()
        for coord in mesh.devices():
            rank = mesh.coords_on(coord, (axis,))[0]
            chunk_idx = (rank - step + k - 2) % k
            carry[coord] = shifted[coord] + local_chunks[coord][chunk_idx]

    shards = mesh.empty_shards()
    for coord in mesh.devices():
        shards[coord] = carry[coord]
    out = ShardedTensor(mesh, new_spec, t.global_shape, shards)
    return out, stats


def ring_all_reduce(t: ShardedTensor, axis: str, dim: str
                    ) -> tuple[ShardedTensor, RingStats]:
    """All-reduce = ring reduce-scatter + ring all-gather (2(K-1) steps)."""
    reduced, stats1 = ring_reduce_scatter(t, axis, dim)
    gathered, stats2 = ring_all_gather(reduced, axis, dim)
    return gathered, RingStats(
        steps=stats1.steps + stats2.steps,
        bytes_sent_per_chip=(stats1.bytes_sent_per_chip
                             + stats2.bytes_sent_per_chip))
