"""Collective communication: analytic costs + executable ring algorithms."""

from repro.collectives.cost import (
    CollectiveCost,
    all_gather_time,
    all_reduce_time,
    all_to_all_time,
    reduce_scatter_time,
)
from repro.collectives.ring import (
    RingStats,
    collective_permute,
    ring_all_gather,
    ring_all_reduce,
    ring_reduce_scatter,
)

__all__ = [
    "CollectiveCost",
    "RingStats",
    "all_gather_time",
    "all_reduce_time",
    "all_to_all_time",
    "collective_permute",
    "reduce_scatter_time",
    "ring_all_gather",
    "ring_all_reduce",
    "ring_reduce_scatter",
]
