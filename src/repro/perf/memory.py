"""Per-chip memory accounting and fit checks (Sections 2, 3.3; Table 1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.chip import ChipSpec
from repro.hardware.topology import Torus3D
from repro.model.config import ModelConfig
from repro.partitioning.attention_costs import (
    kv_bytes_per_chip,
    max_context_length,
)
from repro.partitioning.plan import AttentionLayoutKind, LayoutPlan

#: Fraction of HBM usable for weights + KV cache; the rest holds
#: activations, collective buffers, and the runtime.
DEFAULT_USABLE_FRACTION = 0.9

#: Table 1's convention: 30% of total memory reserved for the KV cache.
TABLE1_KV_FRACTION = 0.3


def weight_bytes_per_chip(config: ModelConfig, n_chips: int,
                          weight_dtype_bytes: int = 2) -> float:
    """Weights are fully sharded in every layout (stationary or gathered)."""
    return config.weight_bytes(weight_dtype_bytes) / n_chips


@dataclass(frozen=True)
class MemoryFootprint:
    """Per-chip bytes at an operating point."""

    weights: float
    kv_cache: float

    @property
    def total(self) -> float:
        return self.weights + self.kv_cache

    def fits(self, chip: ChipSpec,
             usable_fraction: float = DEFAULT_USABLE_FRACTION) -> bool:
        return self.total <= chip.hbm_bytes * usable_fraction


def footprint(config: ModelConfig, plan: LayoutPlan, torus: Torus3D,
              batch: int, context_len: int, *, weight_dtype_bytes: int = 2,
              kv_dtype_bytes: int = 2) -> MemoryFootprint:
    """Per-chip weights + KV bytes for a plan at a batch and context."""
    return MemoryFootprint(
        weights=weight_bytes_per_chip(config, torus.num_chips,
                                      weight_dtype_bytes),
        kv_cache=kv_bytes_per_chip(config, plan.attention, torus.num_chips,
                                   batch, context_len, kv_dtype_bytes))


def table1_max_context(config: ModelConfig,
                       attention_layout: AttentionLayoutKind,
                       chip: ChipSpec, n_chips: int, batch: int,
                       kv_fraction: float = TABLE1_KV_FRACTION,
                       kv_dtype_bytes: int = 2) -> int:
    """Max context under Table 1's 30%-of-memory KV budget."""
    budget = chip.hbm_bytes * kv_fraction
    return max_context_length(config, attention_layout, n_chips, batch,
                              budget, kv_dtype_bytes)


@dataclass(frozen=True)
class PeakActivationFootprint:
    """Transient per-chip bytes at the busiest point of one forward pass."""

    activations: float        # residual + gathered activations
    hidden: float             # FFN hidden (post in-projection)
    gathered_weights: float   # weight-gathered layouts' transient buffers

    @property
    def total(self) -> float:
        return self.activations + self.hidden + self.gathered_weights


def peak_activation_bytes(config: ModelConfig, plan: LayoutPlan,
                          torus: Torus3D, batch: int, l_new: int, *,
                          act_dtype_bytes: int = 2,
                          weight_dtype_bytes: int = 2,
                          looped_collectives: bool = True
                          ) -> PeakActivationFootprint:
    """Transient per-chip memory of one forward pass.

    This is the Section 3.5 memory argument made quantitative: a
    weight-gathered layout materializes all-gathered weight buffers of
    ``params_per_layer * N / n_chips`` bytes per layer.  With Looped
    CollectiveEinsum (``looped_collectives=True``) only one ring chunk
    (1/N of the buffer, double-buffered) is ever resident — "some of the
    weight-gathered layouts would exhaust memory without these
    optimizations".
    """
    n = torus.num_chips
    tokens = batch * l_new
    batch_shards = torus.group_size(plan.ffn.batch_axes)
    # Residual (sharded E and/or batch) + the block's gathered activation.
    e_shards = max(n // batch_shards, 1) if not plan.ffn.is_weight_gathered \
        else 1
    residual = tokens * config.d_model * act_dtype_bytes / batch_shards
    gathered_act = residual / (e_shards if not plan.ffn.is_weight_gathered
                               else 1)
    gates = config.ffn_matrices - 1  # hidden copies before the product
    hidden_shards = batch_shards * (
        1 if plan.ffn.is_weight_gathered else n // e_shards)
    hidden = (max(gates, 1) * tokens * config.d_ff * act_dtype_bytes
              / hidden_shards)

    gathered_weights = 0.0
    if plan.ffn.is_weight_gathered:
        n_gathered = torus.group_size(plan.ffn.gather_axes)
        per_layer = (config.params_per_layer * weight_dtype_bytes / n
                     * n_gathered)
        if looped_collectives:
            # One in-flight ring chunk plus the compute chunk.
            per_layer = 2 * per_layer / n_gathered
        gathered_weights = per_layer
    return PeakActivationFootprint(activations=residual + gathered_act,
                                   hidden=hidden,
                                   gathered_weights=gathered_weights)


def fits_with_transients(config: ModelConfig, plan: LayoutPlan,
                         torus: Torus3D, batch: int, context_len: int,
                         l_new: int, chip: ChipSpec, *,
                         weight_dtype_bytes: int = 2,
                         kv_dtype_bytes: int = 2,
                         act_dtype_bytes: int = 2,
                         looped_collectives: bool = True) -> bool:
    """Memory-fit check including transient buffers (Section 3.5)."""
    static = footprint(config, plan, torus, batch, context_len,
                       weight_dtype_bytes=weight_dtype_bytes,
                       kv_dtype_bytes=kv_dtype_bytes)
    transient = peak_activation_bytes(
        config, plan, torus, batch, l_new,
        act_dtype_bytes=act_dtype_bytes,
        weight_dtype_bytes=weight_dtype_bytes,
        looped_collectives=looped_collectives)
    return static.total + transient.total <= chip.hbm_bytes
