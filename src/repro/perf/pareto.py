"""Pareto sweeps over batch size, chip count, and layout (Figures 1, C.1).

The sweep engine evaluates every candidate plan at every (chip count,
batch) point, drops points whose weights + KV cache do not fit in memory,
keeps the fastest plan per point, and extracts the Pareto frontier of cost
(chip-seconds per token, Section 4.4) versus latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.hardware.chip import ChipSpec
from repro.hardware.topology import Torus3D, default_slice_shape
from repro.model.config import ModelConfig
from repro.partitioning.plan import LayoutPlan
from repro.partitioning.selector import (
    Phase,
    SelectionContext,
    candidate_plans,
)
from repro.perf.efficiency import EfficiencyModel
from repro.perf.estimator import InferenceEstimator, PhaseCost
from repro.perf.memory import footprint


@dataclass(frozen=True)
class OperatingPoint:
    """One evaluated (chips, batch, plan) configuration."""

    model_name: str
    phase: Phase
    n_chips: int
    torus: Torus3D
    batch: int
    plan: LayoutPlan
    latency_s: float            # per generated token (decode) / total (prefill)
    cost_chip_seconds_per_token: float
    mfu: float
    detail: PhaseCost

    def describe(self) -> str:
        return (f"{self.model_name} {self.phase.value} C={self.n_chips} "
                f"B={self.batch} [{self.plan.describe()}]: "
                f"{self.latency_s * 1e3:.1f} ms, MFU {self.mfu:.1%}, "
                f"{self.cost_chip_seconds_per_token * 1e3:.3f} "
                f"chip-ms/token")


DEFAULT_CHIP_COUNTS = (8, 16, 32, 64, 128, 256)
DEFAULT_BATCHES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def _best_point(estimator: InferenceEstimator, ctx: SelectionContext,
                evaluate: Callable[[LayoutPlan], tuple[float, PhaseCost]],
                context_for_memory: int, *, weight_dtype_bytes: int,
                chip: ChipSpec) -> OperatingPoint | None:
    best = None
    for plan in candidate_plans(ctx):
        fp = footprint(ctx.config, plan, ctx.torus, ctx.batch,
                       context_for_memory,
                       weight_dtype_bytes=weight_dtype_bytes)
        if not fp.fits(chip):
            continue
        latency, detail = evaluate(plan)
        if best is None or latency < best.latency_s:
            best = OperatingPoint(
                model_name=ctx.config.name, phase=ctx.phase,
                n_chips=ctx.torus.num_chips, torus=ctx.torus,
                batch=ctx.batch, plan=plan, latency_s=latency,
                cost_chip_seconds_per_token=(
                    detail.cost_chip_seconds_per_token),
                mfu=detail.mfu, detail=detail)
    return best


def sweep_decode(config: ModelConfig, chip: ChipSpec, *,
                 context_len: int = 2048, gen_len: int = 64,
                 chip_counts: Sequence[int] = DEFAULT_CHIP_COUNTS,
                 batches: Sequence[int] = DEFAULT_BATCHES,
                 weight_dtype_bytes: int = 2,
                 efficiency: EfficiencyModel | None = None,
                 mfu_params: float | None = None) -> list[OperatingPoint]:
    """Per-token decode latency vs. cost sweep (Figure 1 left).

    Latency per token for generating ``gen_len`` tokens given an
    already-processed context of ``context_len`` (the figure's setting).
    """
    points = []
    for n_chips in chip_counts:
        torus = default_slice_shape(n_chips)
        estimator = InferenceEstimator(
            config, chip, torus, efficiency=efficiency,
            weight_dtype_bytes=weight_dtype_bytes, mfu_params=mfu_params)
        for batch in batches:
            ctx = SelectionContext(config, torus, Phase.DECODE, batch, 1)

            def evaluate(plan):
                gen = estimator.generate_cost(plan, batch, context_len,
                                              gen_len)
                return gen.latency_per_token_s, gen.per_step

            point = _best_point(estimator, ctx, evaluate,
                                context_len + gen_len,
                                weight_dtype_bytes=weight_dtype_bytes,
                                chip=chip)
            if point:
                points.append(point)
    return points


def sweep_prefill(config: ModelConfig, chip: ChipSpec, *,
                  input_len: int = 2048,
                  chip_counts: Sequence[int] = DEFAULT_CHIP_COUNTS,
                  batches: Sequence[int] = DEFAULT_BATCHES,
                  weight_dtype_bytes: int = 2,
                  efficiency: EfficiencyModel | None = None,
                  mfu_params: float | None = None) -> list[OperatingPoint]:
    """Prefill time vs. cost sweep (Figure 1 right)."""
    points = []
    for n_chips in chip_counts:
        torus = default_slice_shape(n_chips)
        estimator = InferenceEstimator(
            config, chip, torus, efficiency=efficiency,
            weight_dtype_bytes=weight_dtype_bytes, mfu_params=mfu_params)
        for batch in batches:
            ctx = SelectionContext(config, torus, Phase.PREFILL, batch,
                                   input_len)

            def evaluate(plan):
                cost = estimator.prefill_cost(plan, batch, input_len)
                return cost.time_s, cost

            point = _best_point(estimator, ctx, evaluate, input_len,
                                weight_dtype_bytes=weight_dtype_bytes,
                                chip=chip)
            if point:
                points.append(point)
    return points


def pareto_frontier(points: Sequence[OperatingPoint],
                    x: Callable[[OperatingPoint], float] = (
                        lambda p: p.latency_s),
                    y: Callable[[OperatingPoint], float] = (
                        lambda p: p.cost_chip_seconds_per_token)
                    ) -> list[OperatingPoint]:
    """Points not dominated in (x, y), sorted by x ascending.

    Matches the paper's Appendix D definition: a point is on the frontier
    if no other point is at least as good on both axes (and better on one).
    """
    frontier = []
    for p in sorted(points, key=lambda p: (x(p), y(p))):
        if frontier and y(p) >= y(frontier[-1]) and x(p) >= x(frontier[-1]):
            continue
        while frontier and y(frontier[-1]) >= y(p) and \
                x(frontier[-1]) >= x(p):
            frontier.pop()
        frontier.append(p)
    return frontier
