"""End-to-end analytical latency/MFU/cost estimator (Sections 2, 4).

``InferenceEstimator`` combines, per forward pass:

* **compute time** — the 2N-rule matmul FLOPs plus attention score/value
  FLOPs, divided by achieved FLOPs (roofline with the skinny-matmul ramp);
* **memory time** — per-chip weight bytes plus per-chip KV-cache bytes
  (layout-dependent, Section 3.3), over achieved HBM bandwidth;
* **communication time** — the summed Appendix A.1 costs of the *exact*
  collective sequence the partitioned program issues
  (:mod:`repro.perf.comm_model`), partially hidden by overlap.

The step-time composition rule is the roofline one the paper reasons with
(Section 2): weights stream from HBM concurrently with the matmuls that
consume them, so compute and memory time overlap (max); communication that
Looped CollectiveEinsum fails to hide is exposed (add); fixed per-layer /
per-step overheads add.

MFU follows the paper's definition: observed tokens/s times the *model's*
2N FLOPs per token, over aggregate peak FLOPs.  For the padded PaLM 540B
variant, pass ``mfu_params`` = the unpadded parameter count so the pad is
charged as lost MFU (the 3% cost noted in Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.chip import ChipSpec
from repro.hardware.topology import Torus3D
from repro.model.config import ModelConfig
from repro.partitioning.attention_costs import kv_bytes_per_chip
from repro.partitioning.plan import LayoutPlan
from repro.perf.comm_model import comm_time, forward_comm_events
from repro.perf.efficiency import EfficiencyModel
from repro.perf.memory import weight_bytes_per_chip


@dataclass(frozen=True)
class PhaseCost:
    """Cost breakdown for one forward pass (a prefill or a decode step)."""

    batch: int
    tokens: int              # batch * new tokens this pass
    time_s: float
    compute_s: float
    weight_load_s: float
    kv_load_s: float
    comm_s: float            # total communication time (before overlap)
    comm_exposed_s: float    # the part that adds to the critical path
    overhead_s: float
    mfu: float
    cost_chip_seconds_per_token: float

    @property
    def memory_s(self) -> float:
        return self.weight_load_s + self.kv_load_s


@dataclass(frozen=True)
class GenerateCost:
    """Aggregate over ``n_steps`` autoregressive steps."""

    n_steps: int
    total_s: float
    per_step: PhaseCost      # at the mean context length

    @property
    def latency_per_token_s(self) -> float:
        return self.total_s / self.n_steps


class InferenceEstimator:
    """Analytical model of one (model, chip, torus) deployment."""

    def __init__(self, config: ModelConfig, chip: ChipSpec,
                 torus: Torus3D, *,
                 efficiency: EfficiencyModel | None = None,
                 weight_dtype_bytes: int = 2, act_dtype_bytes: int = 2,
                 kv_dtype_bytes: int = 2,
                 mfu_params: float | None = None):
        self.config = config
        self.chip = chip
        self.torus = torus
        self.eff = efficiency or EfficiencyModel()
        self.weight_bytes = weight_dtype_bytes
        self.act_bytes = act_dtype_bytes
        self.kv_bytes = kv_dtype_bytes
        self.mfu_params = mfu_params or config.n_params

    # -- one forward pass --------------------------------------------------

    def phase_cost(self, plan: LayoutPlan, batch: int, l_new: int,
                   context_before: int = 0) -> PhaseCost:
        """Cost of one forward pass over ``batch`` x ``l_new`` tokens.

        ``context_before`` is the KV length already cached (0 for a fresh
        prefill; the current context for a decode step).
        """
        cfg, chip, torus, eff = self.config, self.chip, self.torus, self.eff
        n = torus.num_chips
        tokens = batch * l_new
        # Mean KV length each new token attends to (causal within l_new).
        avg_kv = context_before + (l_new + 1) / 2.0

        matmul_flops = cfg.matmul_flops_per_token * tokens
        attn_flops = (4.0 * cfg.n_layers * cfg.n_heads * cfg.d_head
                      * avg_kv * tokens)
        rows = tokens / torus.group_size(plan.ffn.batch_axes)
        compute_s = (matmul_flops
                     / (n * chip.peak_flops * eff.matmul_efficiency(rows))
                     + attn_flops
                     / (n * chip.peak_flops
                        * eff.attention_flops_efficiency))

        hbm = chip.hbm_bandwidth * eff.hbm_efficiency
        weight_load_s = weight_bytes_per_chip(cfg, n,
                                              self.weight_bytes) / hbm
        kv_after = context_before + l_new
        kv_load_s = kv_bytes_per_chip(cfg, plan.attention, n, batch,
                                      kv_after, self.kv_bytes) / hbm

        events = forward_comm_events(cfg, plan, torus, batch, l_new)
        bandwidth = chip.interconnect_bandwidth * eff.network_efficiency
        comm_s = comm_time(events, torus, bandwidth,
                           act_bytes=self.act_bytes,
                           weight_bytes=self.weight_bytes,
                           alpha=eff.link_latency)
        exposed = comm_s * (1.0 - eff.overlap_fraction)

        overhead = (eff.per_layer_overhead * cfg.n_layers
                    + eff.per_step_overhead)
        time_s = (max(compute_s, weight_load_s + kv_load_s) + exposed
                  + overhead)

        useful_flops = 2.0 * self.mfu_params * tokens
        mfu = useful_flops / (time_s * n * chip.peak_flops)
        return PhaseCost(
            batch=batch, tokens=tokens, time_s=time_s, compute_s=compute_s,
            weight_load_s=weight_load_s, kv_load_s=kv_load_s,
            comm_s=comm_s, comm_exposed_s=exposed, overhead_s=overhead,
            mfu=mfu,
            cost_chip_seconds_per_token=n * time_s / tokens)

    # -- phases ---------------------------------------------------------------

    def prefill_cost(self, plan: LayoutPlan, batch: int,
                     input_len: int) -> PhaseCost:
        """Process ``input_len`` prompt tokens per sequence in one pass."""
        return self.phase_cost(plan, batch, input_len, context_before=0)

    def decode_step_cost(self, plan: LayoutPlan, batch: int,
                         context_len: int) -> PhaseCost:
        """One generation step at a given current context length."""
        return self.phase_cost(plan, batch, 1, context_before=context_len)

    def generate_cost(self, plan: LayoutPlan, batch: int,
                      context_before: int, n_steps: int) -> GenerateCost:
        """``n_steps`` decode steps; the context grows by one per step.

        Uses the step cost at the mean context (step time is affine in the
        context length, so this is exact for the total).
        """
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        mean_context = context_before + (n_steps - 1) / 2.0
        step = self.phase_cost(plan, batch, 1,
                               context_before=int(round(mean_context)))
        return GenerateCost(n_steps=n_steps, total_s=step.time_s * n_steps,
                            per_step=step)

    def end_to_end(self, prefill_plan: LayoutPlan, decode_plan: LayoutPlan,
                   batch: int, input_len: int, n_steps: int
                   ) -> tuple[PhaseCost, GenerateCost]:
        """Prefill then generate (the paper's two-phase serving recipe)."""
        prefill = self.prefill_cost(prefill_plan, batch, input_len)
        generate = self.generate_cost(decode_plan, batch, input_len,
                                      n_steps)
        return prefill, generate
