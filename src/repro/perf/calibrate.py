"""Calibration of the efficiency constants against Table 2.

DESIGN.md commits to an auditable calibration: four knobs of
:class:`~repro.perf.efficiency.EfficiencyModel` were fit once to the four
published Table 2 operating points.  This module is that fit, kept as
code: the objective, the anchor targets, and a coordinate-descent
optimizer over the calibrated parameters.  A regression test bounds the
shipped defaults' objective, so any future model change that silently
degrades the anchors fails CI.

Note on the shipped defaults: :func:`calibrate` finds a slightly better
*balanced* optimum (every anchor within ~14%, total log-error ~3x lower)
that sets ``overlap_fraction`` to 0 and lands no anchor exactly.  The
shipped defaults instead pin the two headline anchors — the 28.5 ms/token
int8 decode and the 76%-MFU prefill — essentially exactly, at the price
of running ~1.4x fast on the other two.  Both are defensible; the repo
standardizes on the headline-anchored set and records the residuals in
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.chip import TPU_V4
from repro.hardware.topology import Torus3D
from repro.model.presets import PALM_540B, PALM_540B_PADDED
from repro.partitioning.plan import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf.efficiency import EfficiencyModel
from repro.perf.estimator import InferenceEstimator

_TORUS = Torus3D(4, 4, 4)
_WS2D_HEAD = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
_WS2D_BATCH = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
_WG_XYZ = LayoutPlan(FfnLayoutKind.WG_XYZ, AttentionLayoutKind.BATCH)


@dataclass(frozen=True)
class Anchor:
    """One published Table 2 operating point."""

    name: str
    phase: str
    batch: int
    plan: LayoutPlan
    weight_bytes: int
    paper_seconds: float


TABLE2_ANCHORS = (
    Anchor("ll-prefill", "prefill", 1, _WS2D_HEAD, 1, 0.29),
    Anchor("ll-decode", "decode", 64, _WS2D_BATCH, 1, 1.82),
    Anchor("ht-prefill", "prefill", 512, _WG_XYZ, 2, 85.2),
    Anchor("ht-decode", "decode", 512, _WS2D_BATCH, 2, 6.0),
)

#: The parameters the calibration is allowed to move, with search bounds.
CALIBRATED_PARAMETERS = {
    "flops_efficiency": (0.5, 1.0),
    "rows_half_peak": (4.0, 512.0),
    "overlap_fraction": (0.0, 0.9),
    "per_layer_overhead": (0.0, 400e-6),
}


def model_seconds(anchor: Anchor, efficiency: EfficiencyModel) -> float:
    est = InferenceEstimator(PALM_540B_PADDED, TPU_V4, _TORUS,
                             efficiency=efficiency,
                             weight_dtype_bytes=anchor.weight_bytes,
                             mfu_params=PALM_540B.n_params)
    if anchor.phase == "prefill":
        return est.prefill_cost(anchor.plan, anchor.batch, 2048).time_s
    return est.generate_cost(anchor.plan, anchor.batch, 2048, 64).total_s


def objective(efficiency: EfficiencyModel) -> float:
    """Sum of squared log-ratios over the Table 2 anchors.

    Log-space so a 2x overestimate and a 2x underestimate are equally
    bad, and the four anchors' very different magnitudes weigh equally.
    """
    total = 0.0
    for anchor in TABLE2_ANCHORS:
        ratio = model_seconds(anchor, efficiency) / anchor.paper_seconds
        total += math.log(ratio) ** 2
    return total


def calibrate(start: EfficiencyModel | None = None, *, sweeps: int = 3,
              points_per_axis: int = 9) -> tuple[EfficiencyModel, float]:
    """Coordinate descent over the calibrated parameters.

    Deliberately simple (no scipy dependency in the library proper): a
    few sweeps of per-axis grid refinement, which is plenty for a smooth
    4-parameter objective.  Returns ``(best model, best objective)``.
    """
    best = start or EfficiencyModel()
    best_value = objective(best)
    for _ in range(sweeps):
        for name, (lo, hi) in CALIBRATED_PARAMETERS.items():
            current = getattr(best, name)
            candidates = {current}
            for i in range(points_per_axis):
                candidates.add(lo + (hi - lo) * i / (points_per_axis - 1))
            for value in sorted(candidates):
                trial = best.with_overrides(**{name: value})
                trial_value = objective(trial)
                if trial_value < best_value - 1e-12:
                    best, best_value = trial, trial_value
    return best, best_value


def report(efficiency: EfficiencyModel | None = None) -> str:
    """Human-readable anchor-by-anchor comparison."""
    efficiency = efficiency or EfficiencyModel()
    lines = [f"{'anchor':12s} {'paper':>9s} {'model':>9s} {'ratio':>7s}"]
    for anchor in TABLE2_ANCHORS:
        got = model_seconds(anchor, efficiency)
        lines.append(f"{anchor.name:12s} {anchor.paper_seconds:8.2f}s "
                     f"{got:8.2f}s {got / anchor.paper_seconds:7.2f}")
    lines.append(f"objective (sum sq log-ratio): "
                 f"{objective(efficiency):.4f}")
    return "\n".join(lines)
