"""Analytical performance model: latency, MFU, cost, memory, Pareto."""

from repro.perf.comm_model import (
    AnalyticCollective,
    comm_time,
    comm_volume_bytes,
    forward_comm_events,
)
from repro.perf.calibrate import calibrate, objective as calibration_objective
from repro.perf.efficiency import IDEAL, EfficiencyModel
from repro.perf.goodput import (
    PricedPoint,
    fleet_tokens_per_second,
    mfu_from_cost,
    usd_per_million_tokens,
)
from repro.perf.estimator import GenerateCost, InferenceEstimator, PhaseCost
from repro.perf.memory import (
    DEFAULT_USABLE_FRACTION,
    fits_with_transients,
    peak_activation_bytes,
    TABLE1_KV_FRACTION,
    MemoryFootprint,
    footprint,
    table1_max_context,
    weight_bytes_per_chip,
)
from repro.perf.pipeline import (
    PipelineCost,
    pipeline_decode_step_cost,
    pipeline_prefill_cost,
)
from repro.perf.pareto import (
    OperatingPoint,
    pareto_frontier,
    sweep_decode,
    sweep_prefill,
)

__all__ = [
    "AnalyticCollective",
    "PipelineCost",
    "PricedPoint",
    "calibrate",
    "calibration_objective",
    "fits_with_transients",
    "fleet_tokens_per_second",
    "mfu_from_cost",
    "peak_activation_bytes",
    "pipeline_decode_step_cost",
    "pipeline_prefill_cost",
    "usd_per_million_tokens",
    "DEFAULT_USABLE_FRACTION",
    "EfficiencyModel",
    "GenerateCost",
    "IDEAL",
    "InferenceEstimator",
    "MemoryFootprint",
    "OperatingPoint",
    "PhaseCost",
    "TABLE1_KV_FRACTION",
    "comm_time",
    "comm_volume_bytes",
    "footprint",
    "forward_comm_events",
    "pareto_frontier",
    "sweep_decode",
    "sweep_prefill",
    "table1_max_context",
    "weight_bytes_per_chip",
]
