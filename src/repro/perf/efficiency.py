"""Calibrated efficiency parameters for the analytical performance model.

The paper's published constants (peak FLOPs, HBM bandwidth, interconnect
bandwidth) bound performance from above; real systems achieve a fraction
of each.  This module concentrates every such fraction in one dataclass so
the calibration is explicit and auditable (DESIGN.md Section 4):

* ``flops_efficiency`` — achievable fraction of peak FLOPs for large
  matmuls.
* ``rows_half_peak`` — matmul M-dimension (per-chip tokens) at which
  efficiency is half of ``flops_efficiency``; models the skinny-matmul
  penalty that makes decode MFU much lower than prefill MFU (Figure C.1).
* ``hbm_efficiency`` / ``network_efficiency`` — achievable bandwidth
  fractions.
* ``overlap_fraction`` — fraction of communication hidden behind compute
  by the Looped CollectiveEinsum technique (Section 3.5 reports ~1.4x
  from overlap + scheduling; 0.55 hidden reproduces that ratio).
* ``per_layer_overhead`` / ``per_step_overhead`` — fixed costs
  (layernorms, sampling, dispatch) that dominate nothing but keep
  low-batch decode honest.

Defaults were calibrated once against the paper's Table 2 operating points
(see ``benchmarks/bench_table2_palm540b.py`` and EXPERIMENTS.md for
paper-vs-model numbers); all *relative* results (layout crossovers, who
wins) are insensitive to them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class EfficiencyModel:
    flops_efficiency: float = 0.80
    rows_half_peak: float = 32.0
    attention_flops_efficiency: float = 0.30
    hbm_efficiency: float = 0.72
    network_efficiency: float = 0.80
    overlap_fraction: float = 0.55
    per_layer_overhead: float = 140e-6
    per_step_overhead: float = 1e-3
    #: Optional per-hop collective latency (alpha in an alpha-beta
    #: model); 0 = the paper's pure-bandwidth Appendix A.1 model.
    link_latency: float = 0.0

    def __post_init__(self) -> None:
        for name in ("flops_efficiency", "attention_flops_efficiency",
                     "hbm_efficiency", "network_efficiency",
                     "overlap_fraction"):
            value = getattr(self, name)
            if not 0 < value <= 1 and name != "overlap_fraction":
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if not 0 <= self.overlap_fraction < 1:
            raise ValueError("overlap_fraction must be in [0, 1)")

    def matmul_efficiency(self, rows_per_chip: float) -> float:
        """Achieved fraction of peak FLOPs for a matmul with M rows/chip.

        A saturating ramp: tiny-M decode matmuls run far below peak (they
        are bandwidth-bound per weight tile), wide prefill matmuls approach
        ``flops_efficiency``.
        """
        if rows_per_chip <= 0:
            raise ValueError("rows_per_chip must be positive")
        ramp = rows_per_chip / (rows_per_chip + self.rows_half_peak)
        return self.flops_efficiency * ramp

    def with_overrides(self, **kwargs) -> "EfficiencyModel":
        return replace(self, **kwargs)


#: The paper's idealized setting: all roofline bounds achieved, all
#: communication exposed.  Useful for reproducing pure-formula plots
#: (Figures 3 and the Appendix A derivations) and for ablations.
IDEAL = EfficiencyModel(
    flops_efficiency=1.0, rows_half_peak=1e-9,
    attention_flops_efficiency=1.0, hbm_efficiency=1.0,
    network_efficiency=1.0, overlap_fraction=0.0,
    per_layer_overhead=0.0, per_step_overhead=0.0, link_latency=0.0)
