"""Prefill/decode disaggregation sizing (Section 4.4).

"This mixture of batch sizes is possible in practice either by generating
multiple samples from the same input text, or by pipelining a batch-1
prefill server into a batch-64 decoding server."  This module sizes that
pipeline: given the analytical per-request prefill time and the decode
server's round time, how many prefill replicas keep one decode server
fed, what the steady-state request rate is, and what each side's
utilization looks like under an imbalanced deployment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.partitioning.plan import LayoutPlan
from repro.perf.estimator import InferenceEstimator


@dataclass(frozen=True)
class DisaggregationPlan:
    """A sized prefill->decode pipeline."""

    prefill_seconds_per_request: float
    decode_seconds_per_request: float   # decode-server time per slot turn
    decode_batch: int
    prefill_replicas: int               # replicas needed to keep decode fed
    requests_per_second: float          # steady-state pipeline throughput
    prefill_utilization: float          # at that rate, per prefill replica
    decode_utilization: float

    @property
    def bottleneck(self) -> str:
        return ("prefill" if self.prefill_utilization
                >= self.decode_utilization - 1e-12 else "decode")


def size_pipeline(prefill_estimator: InferenceEstimator,
                  decode_estimator: InferenceEstimator,
                  prefill_plan: LayoutPlan, decode_plan: LayoutPlan, *,
                  input_len: int, gen_len: int, decode_batch: int
                  ) -> DisaggregationPlan:
    """Size the §4.4 pipeline for a workload.

    The decode server completes ``decode_batch`` requests every
    ``gen_len`` steps; each completion frees a slot that needs one
    prefilled request.  Prefill replicas run batch-1 (the low-latency
    point).  The replica count is the smallest integer whose aggregate
    prefill rate meets the decode server's consumption rate.
    """
    if decode_batch < 1 or gen_len < 1:
        raise ValueError("decode_batch and gen_len must be >= 1")
    prefill = prefill_estimator.prefill_cost(prefill_plan, 1, input_len)
    generate = decode_estimator.generate_cost(decode_plan, decode_batch,
                                              input_len, gen_len)
    decode_per_request = generate.total_s / decode_batch
    consumption_rate = decode_batch / generate.total_s  # requests/s
    replicas = max(1, math.ceil(prefill.time_s * consumption_rate))
    supply_rate = replicas / prefill.time_s
    rate = min(consumption_rate, supply_rate)
    return DisaggregationPlan(
        prefill_seconds_per_request=prefill.time_s,
        decode_seconds_per_request=decode_per_request,
        decode_batch=decode_batch,
        prefill_replicas=replicas,
        requests_per_second=rate,
        prefill_utilization=rate * prefill.time_s / replicas,
        decode_utilization=rate / consumption_rate,
    )


def turn_latency(plan: DisaggregationPlan) -> float:
    """Unloaded end-to-end latency of one request through the pipeline."""
    return (plan.prefill_seconds_per_request
            + plan.decode_seconds_per_request * plan.decode_batch)
