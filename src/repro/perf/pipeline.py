"""Pipeline parallelism modeling (Section 6 / Appendix D baselines).

FasterTransformer combines tensor parallelism *within* a node with
pipeline parallelism *across* nodes (e.g. the PP3/TP8 configuration of
Tables D.2-D.4); the paper's own TPU implementation deliberately avoids
pipelining, which is part of why its 64-way tensor layout is interesting.
To compare fairly — and to let users of this library explore the
pipeline axis — this module layers the standard pipeline schedule model
on top of :class:`~repro.perf.estimator.InferenceEstimator`:

* Each of ``S`` stages holds ``n_layers / S`` consecutive layers on its
  own tensor-parallel sub-slice.
* **Prefill** streams ``m`` microbatches: total time is
  ``(S - 1 + m) / m`` x the per-stage work (the classic bubble), plus an
  inter-stage activation transfer per microbatch per boundary.
* **Decode** is latency-serial: each token passes through all stages, so
  the step latency is the *sum* of stage latencies (+ transfers) — which
  is why pipelining cannot buy decode latency, only capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.chip import ChipSpec
from repro.hardware.topology import Torus3D
from repro.model.config import ModelConfig
from repro.partitioning.plan import LayoutPlan
from repro.perf.efficiency import EfficiencyModel
from repro.perf.estimator import InferenceEstimator


@dataclass(frozen=True)
class PipelineCost:
    """End-to-end cost of one phase under a pipeline schedule."""

    stages: int
    microbatches: int
    stage_time_s: float       # one stage's time for one microbatch
    transfer_s: float         # per-boundary activation transfer
    total_s: float
    bubble_fraction: float    # idle fraction due to fill/drain

    @property
    def chips_total(self) -> int:  # pragma: no cover - convenience only
        raise AttributeError("use the calling context's chip count")


def _stage_estimator(config: ModelConfig, chip: ChipSpec,
                     stage_torus: Torus3D, stages: int,
                     efficiency: EfficiencyModel | None,
                     weight_dtype_bytes: int,
                     mfu_params: float | None) -> InferenceEstimator:
    if config.n_layers % stages:
        raise ValueError(
            f"{config.n_layers} layers not divisible into {stages} stages")
    stage_config = config.replace(name=f"{config.name}-stage",
                                  n_layers=config.n_layers // stages)
    stage_mfu = (mfu_params or config.n_params) / stages
    return InferenceEstimator(stage_config, chip, stage_torus,
                              efficiency=efficiency,
                              weight_dtype_bytes=weight_dtype_bytes,
                              mfu_params=stage_mfu)


def _transfer_seconds(config: ModelConfig, chip: ChipSpec,
                      tokens: float, act_bytes: int,
                      efficiency: EfficiencyModel | None) -> float:
    """Activations ``tokens x d_model`` cross one stage boundary."""
    eff = efficiency or EfficiencyModel()
    bandwidth = chip.interconnect_bandwidth * eff.network_efficiency
    return tokens * config.d_model * act_bytes / bandwidth


def pipeline_prefill_cost(config: ModelConfig, chip: ChipSpec,
                          stage_torus: Torus3D, stages: int, batch: int,
                          input_len: int, plan: LayoutPlan, *,
                          microbatches: int | None = None,
                          weight_dtype_bytes: int = 2,
                          act_dtype_bytes: int = 2,
                          efficiency: EfficiencyModel | None = None,
                          mfu_params: float | None = None) -> PipelineCost:
    """Prefill under an S-stage pipeline with m microbatches.

    ``microbatches`` defaults to the batch size (FT streams microbatches
    of one sequence).  ``stage_torus`` is each stage's tensor-parallel
    sub-slice; total chips = ``stages * stage_torus.num_chips``.
    """
    if stages < 1:
        raise ValueError("stages must be >= 1")
    m = microbatches or batch
    if not 1 <= m <= batch:
        raise ValueError("microbatches must be in [1, batch]")
    est = _stage_estimator(config, chip, stage_torus, stages, efficiency,
                           weight_dtype_bytes, mfu_params)
    micro_batch = batch / m
    stage_time = est.prefill_cost(plan, max(1, round(micro_batch)),
                                  input_len).time_s
    transfer = _transfer_seconds(config, chip,
                                 micro_batch * input_len,
                                 act_dtype_bytes, efficiency)
    if stages == 1:
        transfer = 0.0  # no stage boundary to cross
    slots = stages - 1 + m
    total = slots * (stage_time + transfer)
    bubble = (stages - 1) / slots
    return PipelineCost(stages=stages, microbatches=m,
                        stage_time_s=stage_time, transfer_s=transfer,
                        total_s=total, bubble_fraction=bubble)


def pipeline_decode_step_cost(config: ModelConfig, chip: ChipSpec,
                              stage_torus: Torus3D, stages: int,
                              batch: int, context_len: int,
                              plan: LayoutPlan, *,
                              weight_dtype_bytes: int = 2,
                              act_dtype_bytes: int = 2,
                              efficiency: EfficiencyModel | None = None,
                              mfu_params: float | None = None
                              ) -> PipelineCost:
    """One decode step: stages in series (no bubble, no speedup)."""
    if stages < 1:
        raise ValueError("stages must be >= 1")
    est = _stage_estimator(config, chip, stage_torus, stages, efficiency,
                           weight_dtype_bytes, mfu_params)
    stage_time = est.decode_step_cost(plan, batch, context_len).time_s
    transfer = _transfer_seconds(config, chip, batch, act_dtype_bytes,
                                 efficiency)
    total = stages * stage_time + (stages - 1) * transfer
    return PipelineCost(stages=stages, microbatches=1,
                        stage_time_s=stage_time, transfer_s=transfer,
                        total_s=total, bubble_fraction=0.0)
