"""Operational cost conversions (Section 4.4's cost metric, in dollars).

The paper reports cost as chip-seconds per token, "directly proportional
to operational cost and inversely proportional to MFU".  This module
carries the proportionality through: given a chip-hour price, convert
operating points to dollars per million tokens and tokens per dollar —
the units a serving team budgets in.
"""

from __future__ import annotations

from dataclasses import dataclass

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class PricedPoint:
    """An operating point with money attached."""

    chip_seconds_per_token: float
    chip_hour_price_usd: float

    def __post_init__(self) -> None:
        if self.chip_seconds_per_token <= 0:
            raise ValueError("chip_seconds_per_token must be positive")
        if self.chip_hour_price_usd <= 0:
            raise ValueError("chip_hour_price_usd must be positive")

    @property
    def usd_per_token(self) -> float:
        return (self.chip_seconds_per_token
                * self.chip_hour_price_usd / SECONDS_PER_HOUR)

    @property
    def usd_per_million_tokens(self) -> float:
        return self.usd_per_token * 1e6

    @property
    def tokens_per_usd(self) -> float:
        return 1.0 / self.usd_per_token


def usd_per_million_tokens(chip_seconds_per_token: float,
                           chip_hour_price_usd: float) -> float:
    """Convenience wrapper around :class:`PricedPoint`."""
    return PricedPoint(chip_seconds_per_token,
                       chip_hour_price_usd).usd_per_million_tokens


def fleet_tokens_per_second(n_chips: int,
                            chip_seconds_per_token: float) -> float:
    """Steady-state throughput of a fleet at a given per-token cost."""
    if n_chips < 1:
        raise ValueError("n_chips must be >= 1")
    return n_chips / chip_seconds_per_token


def mfu_from_cost(chip_seconds_per_token: float, n_params: float,
                  peak_flops: float) -> float:
    """Invert the Section 4.4 identity: MFU = 2N / (cost * peak).

    ``cost`` here is chip-seconds per token, so the chip count cancels —
    this is the "inversely proportional to MFU" statement, executable.
    """
    return 2.0 * n_params / (chip_seconds_per_token * peak_flops)
