"""Symbolic communication model: the executor's collectives, in closed form.

``forward_comm_events`` produces, for one forward pass of the partitioned
model, the exact sequence of collectives that
:class:`repro.layouts.model.ShardedTransformer` would issue — same ops,
same axes, same per-chip payloads (in *elements*; multiply by a byte width
to get bytes).  A test runs a tiny model on the virtual mesh and asserts
the measured ``comm_log`` matches this generator event-for-event, so the
analytical estimator at PaLM-540B scale is summing the costs of a program
we have actually executed and verified at small scale.

Payload conventions follow Appendix A.1 / :mod:`repro.mesh.ops`:
all-gather = per-chip output, reduce-scatter = per-chip input, all-reduce =
2x per-chip buffer, all-to-all = per-chip buffer, split = free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.topology import Torus3D
from repro.layouts.model import _GEOMETRY, _WEIGHT_GATHERS
from repro.model.config import AttentionKind, FfnKind, ModelConfig
from repro.partitioning.plan import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.sharding.spec import parse


@dataclass(frozen=True)
class AnalyticCollective:
    """One modeled collective: op, participating axes, per-chip payload."""

    op: str
    axes: tuple[str, ...]
    payload_elements: float
    kind: str = "act"  # "act" or "weight" — selects the byte width


def forward_comm_events(config: ModelConfig, plan: LayoutPlan,
                        torus: Torus3D, batch: int, l_new: int,
                        _part: str = "all") -> list[AnalyticCollective]:
    """All collectives of one forward pass over ``batch`` x ``l_new`` tokens.

    ``_part`` selects a slice of the pass: ``"layer"`` returns one
    transformer block's events, ``"final"`` the trailing norm + logits
    gather, ``"all"`` the whole pass (n_layers blocks + final).
    """
    geo = _GEOMETRY[plan.ffn]
    g = torus.group_size
    e_axes = parse(geo["residual"]).axes_for("E")
    e_gather: tuple = geo["e_gather"]
    rs_axes: tuple = geo["rs_axes"]
    stored_h: tuple = geo["stored_hidden"]
    we_axes: tuple = ("x",) if geo["weight_e"] else ()
    f_rs = geo["f_rs"]

    b_sh = g(plan.ffn.batch_axes)
    hid_sh = g(stored_h)
    we_sh = g(we_axes)
    # E sharding of the activations after the block-entry all-gather: X for
    # WS_2D (E stays sharded over the weights' x axis), 1 for the
    # weight-gathered layouts (activations see the full E).
    post_e = g(e_axes) // g(e_gather)
    cfg = config
    E, F, H, K, D = (cfg.d_model, cfg.d_ff, cfg.n_heads, cfg.n_kv_heads,
                     cfg.d_head)
    kv_sharded = cfg.n_kv_heads > 1 and cfg.n_kv_heads % hid_sh == 0
    kv_sh = hid_sh if kv_sharded else 1
    wg = plan.ffn.is_weight_gathered
    batch_attn = plan.attention is AttentionLayoutKind.BATCH
    # The executor branches on spec partial sums: Q carries a partial sum
    # only when the weights' E axis is still sharded at einsum time, which
    # weight gathering removes.
    we_sharded = bool(we_axes) and not wg
    bl = batch * l_new / b_sh  # per-chip tokens

    events: list[AnalyticCollective] = []

    def add(op, axes, payload, kind="act"):
        events.append(AnalyticCollective(op, tuple(axes), float(payload),
                                         kind))

    # -- weight gathers (mirror of ShardedTransformer._gathered) -------------

    gathers = _WEIGHT_GATHERS.get(plan.ffn)

    def gathered(dims: list[tuple[str, tuple, int]], kind: str) -> None:
        """dims: ordered (name, current axes, size) triples of one weight."""
        if not wg:
            return
        shard = {name: list(axes) for name, axes, _ in dims}
        sizes = {name: size for name, _, size in dims}

        def payload():
            total = 1.0
            for name, _, _ in dims:
                total *= sizes[name] / g(tuple(shard[name]))
            return total

        for name, _, _ in dims:
            if name == "E":
                for axes in gathers["E"]:
                    for a in axes:
                        shard["E"].remove(a)
                    add("all_gather", axes, payload(), kind="weight")
            elif name in ("F", "H", "K") and kind == "EFH":
                for axes in gathers["FH"]:
                    if shard[name]:
                        for a in axes:
                            shard[name].remove(a)
                        add("all_gather", axes, payload(), kind="weight")

    w_specs = {
        "wq": ([("E", we_axes, E), ("H", stored_h, H), ("D", (), D)], "EFH"),
        "wk": ([("E", we_axes, E),
                ("K", stored_h if kv_sharded else (), K), ("D", (), D)],
               "EFH" if kv_sharded else "E"),
        "wo": ([("H", stored_h, H), ("D", (), D), ("E", we_axes, E)], "EFH"),
        "w_in": ([("E", we_axes, E), ("F", stored_h, F)], "EFH"),
        "w_out": ([("F", stored_h, F), ("E", we_axes, E)], "EFH"),
    }
    w_specs["wv"] = w_specs["wk"]
    w_specs["w_gate"] = w_specs["w_in"]

    # -- block pieces ------------------------------------------------------

    def norm_events():
        if e_axes:
            add("all_reduce", e_axes, 2 * bl)

    def gather_activations():
        if e_gather:
            add("all_gather", e_gather, bl * E / post_e)

    def attn_events():
        for w in ("wq", "wk", "wv"):
            gathered(*w_specs[w])
        q_local = bl * (H / hid_sh) * D
        kv_local = bl * (K / kv_sh) * D
        if batch_attn and not wg:
            if we_sharded:
                add("reduce_scatter", we_axes, q_local)
                add("reduce_scatter", we_axes, kv_local)
                add("reduce_scatter", we_axes, kv_local)
            if stored_h:
                add("all_to_all", stored_h, q_local / we_sh)
                if kv_sharded:
                    add("all_to_all", stored_h, kv_local / we_sh)
                    add("all_to_all", stored_h, kv_local / we_sh)
                else:
                    add("split", stored_h, 0)
                    add("split", stored_h, 0)
        elif we_sharded:
            add("all_reduce", we_axes, 2 * q_local)
            add("all_reduce", we_axes, 2 * kv_local)
            add("all_reduce", we_axes, 2 * kv_local)
        if batch_attn and not wg:
            if stored_h:
                add("all_to_all", stored_h, bl * H * D / (we_sh * hid_sh))
            if we_sharded:
                add("all_gather", we_axes, bl * H * D / hid_sh)
        gathered(*w_specs["wo"])

    def ffn_events():
        gathered(*w_specs["w_in"])
        gathered(*w_specs["w_out"])
        hidden_local = bl * F / hid_sh
        if f_rs:
            add("reduce_scatter", f_rs, hidden_local)
        if cfg.ffn is FfnKind.SWIGLU:
            gathered(*w_specs["w_gate"])
            if f_rs:
                add("reduce_scatter", f_rs, hidden_local)
        if f_rs:
            add("all_gather", f_rs, hidden_local)

    def finish_events():
        if rs_axes:
            add("reduce_scatter", rs_axes, bl * E / post_e)

    def one_layer():
        if cfg.parallel_block:
            norm_events()
            gather_activations()
            attn_events()
            ffn_events()
            finish_events()
        else:
            norm_events()
            gather_activations()
            attn_events()
            finish_events()
            norm_events()
            gather_activations()
            ffn_events()
            finish_events()

    def final():
        # Final norm + logits gather.
        norm_events()
        if e_axes:
            add("all_gather", e_axes, bl * E)

    if _part == "layer":
        one_layer()
    elif _part == "final":
        final()
    else:
        for _ in range(cfg.n_layers):
            one_layer()
        final()
    return events


def comm_time(events: list[AnalyticCollective], torus: Torus3D,
              bandwidth: float, *, act_bytes: float = 2.0,
              weight_bytes: float = 2.0, exact: bool = True,
              alpha: float = 0.0) -> float:
    """Total seconds for a list of collectives at given byte widths.

    Uses the Appendix A.1 cost model with the paper's flat "network
    bandwidth" constant (Section 3.1); all-reduce payloads are already
    logged as 2x, so every op except all-to-all costs ``payload *
    (K-1)/K / bandwidth``.  ``alpha`` adds a per-hop latency term,
    ``alpha * (K - 1)`` per collective (2x for all-reduce) — zero by
    default, matching the paper's pure-bandwidth model.
    """
    from repro.collectives.cost import _factor

    total = 0.0
    for ev in events:
        group = torus.group_size(ev.axes)
        width = weight_bytes if ev.kind == "weight" else act_bytes
        seconds = ev.payload_elements * width / bandwidth
        if ev.op == "all_to_all":
            seconds /= 4.0
        elif ev.op == "split":
            seconds = 0.0
        total += seconds * _factor(group, exact)
        if ev.op != "split" and group > 1:
            hops = (group - 1) * (2 if ev.op == "all_reduce" else 1)
            total += alpha * hops
    return total


def comm_volume_bytes(events: list[AnalyticCollective], *,
                      act_bytes: float = 2.0,
                      weight_bytes: float = 2.0) -> float:
    """Total per-chip communication payload in bytes (Figure 3's y-axis)."""
    return sum(ev.payload_elements
               * (weight_bytes if ev.kind == "weight" else act_bytes)
               for ev in events)


def layer_comm_events(config: ModelConfig, plan: LayoutPlan, torus: Torus3D,
                      batch: int, l_new: int) -> list[AnalyticCollective]:
    """The collectives of one transformer block (simulator building block)."""
    return forward_comm_events(config, plan, torus, batch, l_new,
                               _part="layer")


def final_comm_events(config: ModelConfig, plan: LayoutPlan, torus: Torus3D,
                      batch: int, l_new: int) -> list[AnalyticCollective]:
    """The trailing norm all-reduce + logits all-gather."""
    return forward_comm_events(config, plan, torus, batch, l_new,
                               _part="final")
