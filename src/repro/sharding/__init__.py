"""Partitioning notation from Section 3.1 (``BLE_xyz`` and friends)."""

from repro.sharding.spec import ShardingError, ShardSpec, parse

__all__ = ["ShardSpec", "ShardingError", "parse"]
