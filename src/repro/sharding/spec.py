"""The paper's tensor-partitioning notation (Section 3.1).

A sharding spec describes, for a tensor with named logical dimensions, which
mesh axes each dimension is partitioned over, plus any axes over which the
tensor is an unreduced partial sum.  The paper writes, e.g.::

    BLE_xyz              E split over x*y*z partitions
    E_x F_yz             E split over x, F split over y*z
    BLE_yz (partialsum-x)   E split over y*z, values still to be summed over x

:class:`ShardSpec` is the structured form; :func:`parse` accepts the paper's
surface syntax (spaces optional).  Dimension names are single uppercase
letters; mesh axes are single lowercase letters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Sequence

from repro.hardware.topology import Mesh

_TOKEN = re.compile(r"([A-Z])(?:_([a-z]+))?")
_PARTIAL = re.compile(r"\(\s*partialsum-([a-z]+)\s*\)")


class ShardingError(ValueError):
    """Raised for malformed or inconsistent sharding specs."""


@dataclass(frozen=True)
class ShardSpec:
    """Partitioning of a tensor's logical dims over mesh axes.

    Attributes:
        dims: Logical dimension names, in tensor order, e.g. ``('B','L','E')``.
        axes: For each dim, the tuple of mesh axes it is split over (empty
            tuple means replicated along that dim).  Order within the tuple
            matters: the first axis is the outermost (slowest-varying) split.
        partial_sum: Mesh axes over which the tensor holds unreduced partial
            sums (the paper's ``partialsum-x`` suffix).
    """

    dims: tuple[str, ...]
    axes: tuple[tuple[str, ...], ...]
    partial_sum: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.dims) != len(self.axes):
            raise ShardingError(
                f"{len(self.dims)} dims but {len(self.axes)} axis groups")
        seen: set[str] = set()
        for group in list(self.axes) + [self.partial_sum]:
            for axis in group:
                if axis in seen:
                    raise ShardingError(
                        f"mesh axis {axis!r} used more than once in {self}")
                seen.add(axis)
        if len(set(self.dims)) != len(self.dims):
            raise ShardingError(f"duplicate dim names in {self.dims}")

    def __hash__(self) -> int:
        # Specs key several lru_caches on hot paths; the frozen-dataclass
        # hash recomputes from fields every call, so cache it per instance.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.dims, self.axes, self.partial_sum))
            object.__setattr__(self, "_hash", h)
        return h

    # -- construction -----------------------------------------------------

    @classmethod
    def replicated(cls, dims: str | Sequence[str]) -> "ShardSpec":
        """A fully replicated spec over the given dims."""
        dims = tuple(dims)
        return cls(dims=dims, axes=tuple(() for _ in dims))

    # -- queries ----------------------------------------------------------

    @property
    def mesh_axes_used(self) -> tuple[str, ...]:
        """All mesh axes referenced (sharding + partial sum), sorted."""
        used = [a for group in self.axes for a in group]
        used.extend(self.partial_sum)
        return tuple(sorted(used))

    def dim_index(self, dim: str) -> int:
        try:
            return self.dims.index(dim)
        except ValueError:
            raise ShardingError(f"dim {dim!r} not in {self.dims}") from None

    def axes_for(self, dim: str) -> tuple[str, ...]:
        """Mesh axes that the given logical dim is split over."""
        return self.axes[self.dim_index(dim)]

    def sharding_factor(self, dim: str, mesh: Mesh) -> int:
        """Number of partitions the given dim is split into on ``mesh``."""
        return mesh.group_size(self.axes_for(dim))

    def num_shards(self, mesh: Mesh) -> int:
        """Total distinct shards (excluding replication) on ``mesh``."""
        total = 1
        for group in self.axes:
            total *= mesh.group_size(group)
        return total

    def replication_factor(self, mesh: Mesh) -> int:
        """How many chips hold each identical shard."""
        return mesh.num_chips // (self.num_shards(mesh)
                                  * mesh.group_size(self.partial_sum))

    def local_shape(self, global_shape: Sequence[int], mesh: Mesh
                    ) -> tuple[int, ...]:
        """Per-chip shard shape for a global tensor shape.

        Raises :class:`ShardingError` if any dim is not divisible by its
        partition count (the paper always pads to divisibility, e.g. PaLM's
        48 heads padded to 64; see Section 4 "Methodology").  Memoized:
        every ShardedTensor construction calls this, usually with one of a
        handful of (spec, shape, mesh) combinations per model.
        """
        return _local_shape(self, tuple(global_shape), mesh)

    # -- algebra ----------------------------------------------------------

    def with_dim_axes(self, dim: str, axes: Sequence[str]) -> "ShardSpec":
        """Return a copy with the sharding of one dim replaced (memoized)."""
        return _with_dim_axes(self, dim, tuple(axes))

    def with_partial_sum(self, axes: Sequence[str]) -> "ShardSpec":
        return _with_partial_sum(self, tuple(axes))

    @lru_cache(maxsize=None)
    def validate(self, mesh: Mesh) -> None:
        """Check every referenced axis exists on the mesh.

        Memoized (per spec/mesh pair); only successful validations are
        cached, so failures keep raising.
        """
        for axis in self.mesh_axes_used:
            if axis not in mesh.axis_names:
                raise ShardingError(
                    f"spec {self} uses axis {axis!r} not in mesh axes "
                    f"{mesh.axis_names}")

    # -- formatting ---------------------------------------------------------

    def __str__(self) -> str:
        parts = []
        for dim, group in zip(self.dims, self.axes):
            parts.append(dim + ("_" + "".join(group) if group else ""))
        text = "".join(parts)
        if self.partial_sum:
            text += f" (partialsum-{''.join(self.partial_sum)})"
        return text


@lru_cache(maxsize=None)
def _with_dim_axes(spec: ShardSpec, dim: str,
                   axes: tuple[str, ...]) -> ShardSpec:
    idx = spec.dim_index(dim)
    new_axes = list(spec.axes)
    new_axes[idx] = axes
    return ShardSpec(spec.dims, tuple(new_axes), spec.partial_sum)


@lru_cache(maxsize=None)
def _with_partial_sum(spec: ShardSpec, axes: tuple[str, ...]) -> ShardSpec:
    return ShardSpec(spec.dims, spec.axes, axes)


@lru_cache(maxsize=None)
def _local_shape(spec: ShardSpec, global_shape: tuple[int, ...],
                 mesh: Mesh) -> tuple[int, ...]:
    if len(global_shape) != len(spec.dims):
        raise ShardingError(
            f"shape {global_shape} has {len(global_shape)} dims, "
            f"spec {spec} has {len(spec.dims)}")
    local = []
    for dim, size, group in zip(spec.dims, global_shape, spec.axes):
        parts = mesh.group_size(group)
        if size % parts:
            raise ShardingError(
                f"dim {dim} of size {size} not divisible by {parts} "
                f"partitions (axes {group})")
        local.append(size // parts)
    return tuple(local)


def parse(text: str) -> ShardSpec:
    """Parse the paper's notation, e.g. ``"BLE_xyz"`` or ``"E_x F_yz"``.

    Whitespace between dims is optional.  A trailing ``(partialsum-x)``
    marks partial-sum axes.
    """
    partial: tuple[str, ...] = ()
    match = _PARTIAL.search(text)
    body = text
    if match:
        partial = tuple(match.group(1))
        body = text[:match.start()] + text[match.end():]
    body = body.replace(" ", "")
    dims: list[str] = []
    axes: list[tuple[str, ...]] = []
    pos = 0
    while pos < len(body):
        match = _TOKEN.match(body, pos)
        if not match:
            raise ShardingError(f"cannot parse sharding spec {text!r} at "
                                f"position {pos} ({body[pos:]!r})")
        dims.append(match.group(1))
        axes.append(tuple(match.group(2) or ()))
        pos = match.end()
    if not dims:
        raise ShardingError(f"empty sharding spec {text!r}")
    return ShardSpec(tuple(dims), tuple(axes), partial)
