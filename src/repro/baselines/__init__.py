"""Baselines: published FasterTransformer data + analytical A100 model."""

from repro.baselines.a100 import (
    GpuBenchResult,
    run_workload,
    tensor_parallel_estimator,
)
from repro.baselines.fastertransformer import (
    FT_BASELINES,
    FT_PP3_TP8,
    FT_TP16,
    FT_TP32,
    PAPER_MTNLG_TOTAL,
    PAPER_PALM_TOTAL,
    WORKLOADS,
    PublishedResult,
    Workload,
    pareto_frontier_cells,
)

__all__ = [
    "FT_BASELINES",
    "FT_PP3_TP8",
    "FT_TP16",
    "FT_TP32",
    "GpuBenchResult",
    "PAPER_MTNLG_TOTAL",
    "PAPER_PALM_TOTAL",
    "PublishedResult",
    "WORKLOADS",
    "Workload",
    "pareto_frontier_cells",
    "run_workload",
    "tensor_parallel_estimator",
]
