"""Analytical model of the FasterTransformer A100 baselines (Section 5).

FasterTransformer's K-way tensor parallelism is our 1D weight-stationary
layout on a degenerate ``1 x 1 x K`` torus (all-reduce of the full
activations between every fused matmul pair), so the same estimator models
it; the pipeline-parallel PP3/TP8 configuration adds the standard pipeline
bubble factor ``(stages - 1 + m) / m`` over ``m`` microbatches.

This exists to sanity-check the *shape* of the published FT columns
(MFU rising with batch, TP32 communication-bound below TP16's MFU at
equal batch) — the absolute numbers we report for "theirs" in the
Figure 9 bench come from the published tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.chip import A100_80GB, ChipSpec
from repro.hardware.topology import Torus3D
from repro.model.config import ModelConfig
from repro.partitioning.plan import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf.efficiency import EfficiencyModel
from repro.perf.estimator import InferenceEstimator

#: FT runs multihead models, so attention stays head-sharded.
TP_PLAN = LayoutPlan(FfnLayoutKind.WS_1D, AttentionLayoutKind.HEAD)


@dataclass(frozen=True)
class GpuBenchResult:
    batch: int
    time_s: float
    mfu: float


def tensor_parallel_estimator(config: ModelConfig, tp_degree: int,
                              chip: ChipSpec = A100_80GB,
                              efficiency: EfficiencyModel | None = None
                              ) -> InferenceEstimator:
    """An estimator for K-way tensor parallelism on GPUs."""
    torus = Torus3D(1, 1, tp_degree)
    return InferenceEstimator(config, chip, torus, efficiency=efficiency)


def run_workload(config: ModelConfig, tp_degree: int, batch: int,
                 input_len: int, output_len: int, *,
                 pipeline_stages: int = 1,
                 chip: ChipSpec = A100_80GB,
                 efficiency: EfficiencyModel | None = None
                 ) -> GpuBenchResult:
    """End-to-end (prefill + generate) time for one FT-style benchmark.

    With ``pipeline_stages > 1`` the model is additionally split into a
    pipeline; each stage holds ``1/stages`` of the layers and the batch
    flows through in ``m = batch`` microbatches of 1 (FT's scheme), giving
    the bubble factor ``(stages - 1 + m) / m`` on prefill and stage-serial
    decode steps.
    """
    est = tensor_parallel_estimator(config, tp_degree, chip, efficiency)
    prefill = est.prefill_cost(TP_PLAN, batch, input_len)
    generate = est.generate_cost(TP_PLAN, batch, input_len, output_len)
    total = prefill.time_s + generate.total_s
    if pipeline_stages > 1:
        microbatches = max(batch, 1)
        bubble = (pipeline_stages - 1 + microbatches) / microbatches
        total = (prefill.time_s * bubble
                 + generate.total_s)  # decode: stages work in series but
        # the per-step work is already divided across all chips.
    n_chips = tp_degree * pipeline_stages
    tokens = batch * (input_len + output_len)
    mfu = (2.0 * config.n_params * tokens
           / (total * n_chips * chip.peak_flops))
    return GpuBenchResult(batch=batch, time_s=total, mfu=mfu)
