"""Published FasterTransformer / paper benchmark data (Appendix D).

The paper compares against NVIDIA's FasterTransformer running
Megatron-Turing NLG 530B on 16-32 A100s, across three workloads (input
tokens / output tokens): 20/8, 60/20, and 128/8.  We cannot run
FasterTransformer (closed testbed), so — per the reproduction's
substitution policy — its published numbers are encoded as data, and the
"ours" side is recomputed with our analytical model.  The paper's own
measured "ours" columns are also encoded so the reproduction can report
model-vs-published deltas (EXPERIMENTS.md).

All times are milliseconds end-to-end for the full workload; MFU is in
percent, as printed in Tables D.2-D.4.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Workload:
    """One FasterTransformer benchmark configuration."""

    name: str
    input_len: int
    output_len: int


WORKLOADS = (
    Workload("20in-8out", 20, 8),
    Workload("60in-20out", 60, 20),
    Workload("128in-8out", 128, 8),
)


@dataclass(frozen=True)
class PublishedResult:
    """One (batch, configuration) cell of Tables D.2-D.4."""

    batch: int
    time_ms: float | None   # None = OOM / not reported
    mfu_pct: float | None


def _col(rows):
    return tuple(PublishedResult(b, t, m) for b, t, m in rows)


#: FasterTransformer MT-NLG 530B, 16-way tensor parallel (Table D.2-D.4).
FT_TP16 = {
    "20in-8out": _col([(1, 565, 1), (2, 598, 2), (4, 616, 4), (8, 660, 7),
                       (16, 730, 13), (32, 865, 22), (64, 1191, 32),
                       (128, 1862, 41), (256, 3341, 46)]),
    "60in-20out": _col([(1, 1379, 1), (2, 1515, 2), (4, 1512, 4),
                        (8, 1631, 8), (16, 1868, 15), (32, 2361, 23),
                        (64, 3383, 32), (128, 5406, 40),
                        (256, None, None)]),
    "128in-8out": _col([(1, 585, 5), (2, 667, 9), (4, 765, 15),
                        (8, 990, 23), (16, 1377, 34), (32, 2251, 41),
                        (64, 4002, 46), (128, None, None),
                        (256, None, None)]),
}

#: FasterTransformer MT-NLG 530B, 32-way tensor parallel.
FT_TP32 = {
    "20in-8out": _col([(1, 431, 1), (2, 455, 1), (4, 493, 2), (8, 523, 5),
                       (16, 575, 8), (32, 672, 14), (64, 942, 20),
                       (128, 1431, 27), (256, 2483, 31)]),
    "60in-20out": _col([(1, 1037, 1), (2, 1110, 2), (4, 1198, 3),
                        (8, 1295, 5), (16, 1454, 9), (32, 1804, 15),
                        (64, 2646, 21), (128, 4099, 27), (256, 7203, 30)]),
    "128in-8out": _col([(1, 451, 3), (2, 508, 6), (4, 606, 10),
                        (8, 766, 15), (16, 1074, 22), (32, 1741, 27),
                        (64, 3114, 30), (128, 5784, 32),
                        (256, 11232, 33)]),
}

#: FasterTransformer MT-NLG 530B, 3-stage pipeline x 8-way tensor parallel.
FT_PP3_TP8 = {
    "20in-8out": _col([(1, 842, 0), (2, 860, 1), (4, 867, 2), (8, 929, 3),
                       (16, 1049, 6), (32, 1283, 10), (64, 1722, 15),
                       (128, 2124, 24), (256, 3140, 32)]),
    "60in-20out": _col([(1, 2085, 1), (2, 2122, 1), (4, 2184, 2),
                        (8, 2367, 4), (16, 2753, 7), (32, 3543, 10),
                        (64, 4117, 18), (128, 5319, 27), (256, 8318, 35)]),
    "128in-8out": _col([(1, 866, 2), (2, 932, 4), (4, 1097, 7),
                        (8, 1434, 11), (16, 2104, 15), (32, 2623, 23),
                        (64, 3578, 34), (128, 5512, 45), (256, 9614, 51)]),
}

#: The paper's own measured results on 64 TPU v4 (PaLM 540B total column).
PAPER_PALM_TOTAL = {
    "20in-8out": _col([(4, 289, 2), (8, 265, 5), (16, 292, 9),
                       (32, 334, 16), (64, 451, 24), (128, 668, 33),
                       (256, 1083, 41), (512, 2037, 43), (1024, 4041, 44)]),
    "60in-20out": _col([(4, 690, 3), (8, 653, 6), (16, 755, 10),
                        (32, 896, 18), (64, 1218, 26), (128, 1814, 35),
                        (256, 3155, 40), (512, 5910, 43),
                        (1024, 11608, 43)]),
    "128in-8out": _col([(4, 343, 10), (8, 403, 17), (16, 586, 23),
                        (32, 796, 34), (64, 1329, 40), (128, 2343, 46),
                        (256, 4710, 45), (512, 9673, 44),
                        (1024, 19723, 43)]),
}

#: The paper's own measured MT-NLG 530B results on 64 TPU v4 (total).
PAPER_MTNLG_TOTAL = {
    "20in-8out": _col([(4, 289, 2), (8, 304, 4), (16, 339, 8),
                       (32, 420, 13), (64, 532, 20), (128, 740, 29),
                       (256, 1151, 38), (512, 2151, 40), (1024, 4082, 42)]),
    "60in-20out": _col([(4, 678, 3), (8, 728, 5), (16, 838, 9),
                        (32, 1058, 15), (64, 1275, 24), (128, 1902, 32),
                        (256, 3189, 39), (512, 6210, 40),
                        (1024, 12390, 40)]),
    "128in-8out": _col([(4, 338, 10), (8, 384, 16), (16, 540, 23),
                        (32, 799, 33), (64, 1372, 39), (128, 2583, 45),
                        (256, 4911, 45), (512, 9647, 43),
                        (1024, 19136, 43)]),
}

FT_BASELINES = {"TP16": FT_TP16, "TP32": FT_TP32, "PP3/TP8": FT_PP3_TP8}


def pareto_frontier_cells(results: list[PublishedResult]
                          ) -> list[PublishedResult]:
    """The Appendix D Pareto rule over (time, MFU) cells.

    A cell is on the frontier if no other cell has both lower-or-equal
    time and higher-or-equal MFU (strictly better on one).
    """
    valid = [r for r in results if r.time_ms is not None]
    frontier = []
    for r in valid:
        dominated = any(
            (o.time_ms <= r.time_ms and o.mfu_pct >= r.mfu_pct)
            and (o.time_ms < r.time_ms or o.mfu_pct > r.mfu_pct)
            for o in valid)
        if not dominated:
            frontier.append(r)
    return frontier
