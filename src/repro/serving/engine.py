"""Inference serving on top of the reference / sharded models.

Implements the paper's Section 4.4 low-latency recipe: "batch size 1
achieves the best latency in the prefill phase, but for the generate phase
we can increase the batch size up to 64 with negligible latency impact
... by pipelining a batch-1 prefill server into a batch-64 decoding
server".  :class:`TwoPhaseServer` does exactly that: each request is
prefilled alone, the resulting KV caches are merged into decode batches,
and generation proceeds batched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.model.reference import KVCache, ReferenceTransformer
from repro.model.sampling import greedy


@dataclass(frozen=True)
class Request:
    """One generation request."""

    request_id: int
    prompt: np.ndarray          # [L] token ids
    max_new_tokens: int

    def __post_init__(self) -> None:
        if self.prompt.ndim != 1:
            raise ValueError("prompt must be a 1D token array")
        if not np.issubdtype(self.prompt.dtype, np.integer):
            raise ValueError(
                f"prompt must hold integer token ids, got dtype "
                f"{self.prompt.dtype}")
        if self.prompt.size and int(self.prompt.min()) < 0:
            raise ValueError(
                f"prompt token ids must be non-negative, got "
                f"{int(self.prompt.min())}")
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")


@dataclass
class Completion:
    request_id: int
    tokens: np.ndarray          # prompt + generated
    n_generated: int

    @property
    def generated(self) -> np.ndarray:
        return self.tokens[len(self.tokens) - self.n_generated:]


def merge_caches(per_request: Sequence[Sequence[KVCache]]
                 ) -> list[KVCache]:
    """Concatenate per-request (batch-1) KV caches into one batched cache.

    All requests must have the same cache length (the scheduler groups by
    prompt length so this holds; real systems left-pad instead).
    """
    if not per_request:
        raise ValueError("cannot merge an empty list of request caches")
    lengths = {caches[0].length for caches in per_request}
    if len(lengths) != 1:
        raise ValueError(f"cannot merge caches of different lengths "
                         f"{sorted(lengths)}; group requests by length")
    merged = []
    n_layers = len(per_request[0])
    for layer in range(n_layers):
        k = np.concatenate([c[layer].k for c in per_request], axis=0)
        v = np.concatenate([c[layer].v for c in per_request], axis=0)
        merged.append(KVCache(k=k, v=v, length=per_request[0][0].length))
    return merged


class InferenceEngine:
    """Batch generation with a pluggable sampler."""

    def __init__(self, model: ReferenceTransformer, sampler=None,
                 seed: int = 0):
        self.model = model
        self.sampler = sampler or (lambda logits, rng: greedy(logits))
        self.rng = np.random.default_rng(seed)

    def generate(self, prompts: np.ndarray, n_steps: int) -> np.ndarray:
        """Generate ``n_steps`` tokens for a batch of equal-length prompts."""
        return self.model.generate(prompts, n_steps, self.sampler, self.rng)


class TwoPhaseServer:
    """Batch-1 prefill pipelined into batch-N decode (Section 4.4)."""

    def __init__(self, model: ReferenceTransformer, decode_batch: int = 64,
                 sampler=None, seed: int = 0):
        if decode_batch < 1:
            raise ValueError("decode_batch must be >= 1")
        self.model = model
        self.decode_batch = decode_batch
        self.sampler = sampler or (lambda logits, rng: greedy(logits))
        self.rng = np.random.default_rng(seed)
        self.prefill_count = 0
        self.decode_batches = 0

    def _serve_group(self, group: list[Request]) -> list[Completion]:
        n_steps = max(r.max_new_tokens for r in group)
        max_len = len(group[0].prompt) + n_steps
        # Phase 1: low-latency batch-1 prefill per request.
        caches_per_request, first_logits = [], []
        for request in group:
            logits, caches = self.model.prefill(request.prompt[None, :],
                                                max_len)
            caches_per_request.append(caches)
            first_logits.append(logits)
            self.prefill_count += 1
        # Phase 2: merge into one decode batch and generate together.
        caches = merge_caches(caches_per_request)
        self.decode_batches += 1
        logits = np.concatenate(first_logits, axis=0)
        current = self.sampler(logits, self.rng)
        generated = [current[:, None]]
        for _ in range(n_steps - 1):
            logits = self.model.decode_step(current, caches)
            current = self.sampler(logits, self.rng)
            generated.append(current[:, None])
        all_generated = np.concatenate(generated, axis=1)
        completions = []
        for i, request in enumerate(group):
            n = request.max_new_tokens
            tokens = np.concatenate([request.prompt, all_generated[i, :n]])
            completions.append(Completion(request.request_id, tokens, n))
        return completions

    def serve(self, requests: Sequence[Request]) -> list[Completion]:
        """Serve all requests; returns completions in request order."""
        from repro.serving.scheduler import group_requests

        completions: dict[int, Completion] = {}
        for group in group_requests(requests, self.decode_batch):
            for completion in self._serve_group(group):
                completions[completion.request_id] = completion
        return [completions[r.request_id] for r in requests]
