"""Continuous batching: per-slot decode with mid-stream admission.

Section 4.4's low-latency recipe (batch-1 prefill feeding a batch-N
decoder) assumes all N sequences start and stop together.  Production
serving generalizes it: the decoder owns ``max_slots`` sequence *slots*
with independent context lengths; finished sequences retire and fresh
requests are admitted into their slots without draining the batch.  This
module implements that engine on the reference model.

The enabling pieces are per-row positions (RoPE already accepts them) and
a per-row attention mask (each slot attends to its own prefix only), with
KV buffers indexed by per-slot write cursors.  Correctness bar: every
request's tokens are identical to generating it alone, no matter how
admissions interleave — asserted in ``tests/integration``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.model.config import FfnKind
from repro.model.functional import masked_softmax, rmsnorm, swish
from repro.model.reference import ReferenceTransformer
from repro.model.rope import apply_rope
from repro.model.sampling import greedy
from repro.serving.chunked import chunked_prefill, default_prefill_chunk
from repro.serving.engine import Completion, Request


class SlotState:
    """Per-slot KV buffers and write cursors shared across layers."""

    def __init__(self, model: ReferenceTransformer, max_slots: int,
                 max_len: int):
        cfg = model.config
        dtype = model.weights.embedding.dtype
        shape = (max_slots, max_len, cfg.n_kv_heads, cfg.d_head)
        self.k = [np.zeros(shape, dtype=dtype)
                  for _ in range(cfg.n_layers)]
        self.v = [np.zeros(shape, dtype=dtype)
                  for _ in range(cfg.n_layers)]
        self.lengths = np.zeros(max_slots, dtype=np.int64)
        self.max_len = max_len
        self.max_slots = max_slots
        # Step-invariant index tables, prepared once (the slot engine's
        # analogue of the mesh step compiler's stable slots): the row
        # index vector for cursor writes and the KV position row used to
        # build each step's per-slot prefix mask.
        self.rows = np.arange(max_slots)
        self.kv_positions = np.arange(max_len)[None, :]

    def load_prefill(self, slot: int, caches) -> None:
        """Install a batch-1 prefill's caches into one slot."""
        length = caches[0].length
        if length > self.max_len:
            raise ValueError(f"prefix {length} exceeds slot capacity "
                             f"{self.max_len}")
        for layer, cache in enumerate(caches):
            self.k[layer][slot, :length] = cache.k[0, :length]
            self.v[layer][slot, :length] = cache.v[0, :length]
        self.lengths[slot] = length


def slot_decode_step(model: ReferenceTransformer, tokens: np.ndarray,
                     state: SlotState, active: np.ndarray) -> np.ndarray:
    """One decode step over all slots with per-slot context lengths.

    ``tokens`` ``[S]`` (ignored for inactive slots), ``active`` ``[S]``
    bool.  Active slots' cursors advance; inactive slots are computed but
    masked into self-attention-only no-ops and their state is untouched.
    Returns logits ``[S, V]``.
    """
    cfg, w = model.config, model.weights
    state_lengths = state.lengths
    if (active & (state_lengths + 1 > state.max_len)).any():
        raise ValueError("slot KV capacity exceeded")
    positions = state_lengths[:, None]                     # [S, 1]
    x = w.embedding[tokens][:, None, :]                    # [S, 1, E]
    max_kv = min(int(state_lengths.max()) + 1, state.max_len) \
        if len(state_lengths) else 1
    kv_pos = state.kv_positions[:, :max_kv]
    # Each slot sees its own prefix plus the token being written now.
    mask = (kv_pos <= state_lengths[:, None])[:, None, None, :]

    for layer_idx, layer in enumerate(w.layers):
        def attn(y):
            q = np.einsum("ble,ehd->blhd", y, layer.wq)
            k_new = np.einsum("ble,ekd->blkd", y, layer.wk)
            v_new = np.einsum("ble,ekd->blkd", y, layer.wv)
            q = apply_rope(q, positions, cfg.rope_theta)
            k_new = apply_rope(k_new, positions, cfg.rope_theta)
            k_buf, v_buf = state.k[layer_idx], state.v[layer_idx]
            rows = state.rows
            # Inactive slots write a throwaway entry; clamp their cursor
            # so a slot retired exactly at capacity stays in bounds (the
            # garbage is overwritten when the slot is re-admitted).
            write_pos = np.minimum(state_lengths, state.max_len - 1)
            k_buf[rows, write_pos] = k_new[:, 0]
            v_buf[rows, write_pos] = v_new[:, 0]
            k_all = k_buf[:, :max_kv]
            v_all = v_buf[:, :max_kv]
            h, kv = q.shape[2], k_all.shape[2]
            if kv != h:
                k_all = np.repeat(k_all, h // kv, axis=2)
                v_all = np.repeat(v_all, h // kv, axis=2)
            scores = np.einsum("blhd,bmhd->bhlm", q, k_all) \
                / np.sqrt(cfg.d_head)
            probs = masked_softmax(scores, mask)
            out = np.einsum("bhlm,bmhd->blhd", probs, v_all)
            return np.einsum("blhd,hde->ble", out, layer.wo)

        def ffn(y):
            hidden = swish(y @ layer.w_in)
            if cfg.ffn is FfnKind.SWIGLU:
                hidden = hidden * (y @ layer.w_gate)
            return hidden @ layer.w_out

        if cfg.parallel_block:
            y = rmsnorm(x, layer.ln_scale)
            x = x + attn(y) + ffn(y)
        else:
            x = x + attn(rmsnorm(x, layer.ln_scale))
            x = x + ffn(rmsnorm(x, layer.ln2_scale))

    state.lengths = state_lengths + active.astype(np.int64)
    x = rmsnorm(x, w.final_ln_scale)
    return np.einsum("ble,ve->blv", x, w.embedding)[:, 0]


def sharded_decode_rounds(model, compiler, first_tokens: np.ndarray,
                          caches, budgets) -> list[list[int]]:
    """Greedy-decode a shrinking live batch through the program cache.

    The continuous-batching pattern on a sharded model: ``budgets[i]``
    tokens are generated for row ``i`` (budgets must be non-increasing so
    the live rows always form a prefix — retired rows' cache slots become
    the padding rows).  Each round feeds only the live prefix to
    ``compiler.decode_step``; the compiler's batch bucketing pads the
    shrinking batch back to the cache capacity, so after the one capture
    every round replays the same warm program no matter how the batch
    shrinks — the program-cache hit rate stays high across the whole run
    (the capture-v2 benchmark reports it).

    Returns one generated-token list per row, ``budgets[i]`` long.
    """
    budgets = [int(b) for b in budgets]
    if any(budgets[i] < budgets[i + 1] for i in range(len(budgets) - 1)):
        raise ValueError(
            "budgets must be non-increasing (live rows form a prefix)")
    if len(budgets) != first_tokens.shape[0]:
        raise ValueError("one budget per batch row required")
    out: list[list[int]] = [[] for _ in budgets]
    current = np.asarray(first_tokens)
    done = 0
    while True:
        live = sum(1 for b in budgets if b > done)
        if live == 0:
            return out
        logits = compiler.decode_step(model, current[:live], caches)
        nxt = greedy(logits)
        for i in range(live):
            out[i].append(int(nxt[i]))
        current = np.concatenate([nxt, current[live:]])
        done += 1


@dataclass
class _RunningSequence:
    request: Request
    generated: list[int] = field(default_factory=list)
    pending_token: int = 0  # sampled but not yet fed through decode

    @property
    def remaining(self) -> int:
        return self.request.max_new_tokens - len(self.generated)


class ContinuousBatchingEngine:
    """Slot-based decoder with batch-1 prefill admission."""

    def __init__(self, model: ReferenceTransformer, max_slots: int,
                 max_len: int, sampler=None, seed: int = 0,
                 step_hook=None,
                 prefill_chunk: int | None | str = "auto",
                 kvstore=None):
        if max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        self.model = model
        self.max_slots = max_slots
        self.max_len = max_len
        # Admission prefills run chunked by default (bit-identical to
        # whole-prompt; bounded activation memory).  "auto" resolves the
        # REPRO_PREFILL_MODE / REPRO_PREFILL_CHUNK escape hatches; pass
        # an int or None to pin the behavior explicitly.
        self.prefill_chunk = (default_prefill_chunk()
                              if prefill_chunk == "auto"
                              else prefill_chunk)
        # Optional prefix cache (repro.kvstore.KVStore): admission
        # prefills reuse cached prompt prefixes.  The slot copies the
        # installed prefix into its own buffers, so leases are released
        # as soon as the slot is loaded.
        if kvstore is not None and not self.prefill_chunk:
            raise ValueError("kvstore reuse requires chunked prefill")
        self.kvstore = kvstore
        self.sampler = sampler or (lambda logits, rng: greedy(logits))
        self.rng = np.random.default_rng(seed)
        self.steps = 0
        self.admissions = 0
        # Called with the global step index before each decode step; the
        # resilient serving layer uses it to observe progress and to
        # inject scheduled failures (a raise aborts the batch).
        self.step_hook = step_hook

    def serve(self, requests: list[Request]) -> list[Completion]:
        queue = deque(requests)
        slots: list[_RunningSequence | None] = [None] * self.max_slots
        state = SlotState(self.model, self.max_slots, self.max_len)
        completions: dict[int, Completion] = {}

        def admit() -> None:
            for slot_idx in range(self.max_slots):
                if slots[slot_idx] is not None or not queue:
                    continue
                request = queue.popleft()
                if self.prefill_chunk:
                    logits, caches = chunked_prefill(
                        self.model, request.prompt[None, :],
                        self.prefill_chunk, self.max_len,
                        kvstore=self.kvstore)
                else:
                    logits, caches = self.model.prefill(
                        request.prompt[None, :], self.max_len)
                state.load_prefill(slot_idx, caches)
                if self.kvstore is not None:
                    reuse = self.kvstore.take_last_reuse()
                    if reuse is not None and reuse.lease is not None:
                        reuse.lease.release()
                first = int(self.sampler(logits, self.rng)[0])
                running = _RunningSequence(request, pending_token=first)
                running.generated.append(first)
                slots[slot_idx] = running
                self.admissions += 1
                self._retire_if_done(slots, slot_idx, completions)

        def any_active() -> bool:
            return any(s is not None for s in slots)

        admit()
        while queue or any_active():
            if not any_active():
                admit()
                continue
            if self.step_hook is not None:
                self.step_hook(self.steps)
            active = np.array([s is not None for s in slots])
            tokens = np.array([s.pending_token if s else 0
                               for s in slots])
            logits = slot_decode_step(self.model, tokens, state, active)
            self.steps += 1
            for slot_idx, running in enumerate(slots):
                if running is None:
                    continue
                token = int(self.sampler(
                    logits[slot_idx:slot_idx + 1], self.rng)[0])
                running.generated.append(token)
                running.pending_token = token
                self._retire_if_done(slots, slot_idx, completions)
            admit()
        return [completions[r.request_id] for r in requests]

    def _retire_if_done(self, slots, slot_idx, completions) -> None:
        running = slots[slot_idx]
        if running is None or running.remaining > 0:
            return
        tokens = np.concatenate([
            running.request.prompt,
            np.array(running.generated, dtype=running.request.prompt.dtype)])
        completions[running.request.request_id] = Completion(
            running.request.request_id, tokens,
            running.request.max_new_tokens)
        slots[slot_idx] = None
