"""Sequence packing for padding-free batch scoring (EffectiveTransformer).

Section 6 notes that "for larger batch sizes, EffectiveTransformer packs
consecutive sequences together to minimize padding".  This module
implements that optimization for offline scoring workloads: variable-
length prompts are packed into fixed-capacity rows (first-fit decreasing),
scored in one forward pass per row with segment-masked attention
(:meth:`ReferenceTransformer.forward_packed`), and the per-prompt logits
are sliced back out.

Packing efficiency = useful tokens / (rows x capacity); the naive padded
batch's efficiency is mean(len) / max(len).  Tests assert packing never
does worse and the scores are bit-identical to scoring each prompt alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.model.reference import ReferenceTransformer


@dataclass
class PackedRow:
    """One packed row: prompt indices with their slice offsets."""

    capacity: int
    prompt_ids: list[int] = field(default_factory=list)
    offsets: list[int] = field(default_factory=list)
    used: int = 0

    def fits(self, length: int) -> bool:
        return self.used + length <= self.capacity

    def add(self, prompt_id: int, length: int) -> None:
        if not self.fits(length):
            raise ValueError(
                f"prompt of length {length} does not fit (used "
                f"{self.used}/{self.capacity})")
        self.prompt_ids.append(prompt_id)
        self.offsets.append(self.used)
        self.used += length


def pack_prompts(lengths: Sequence[int], capacity: int) -> list[PackedRow]:
    """First-fit-decreasing bin packing of prompt lengths into rows."""
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    too_long = [length for length in lengths if length > capacity]
    if too_long:
        raise ValueError(
            f"prompt length {max(too_long)} exceeds capacity {capacity}")
    order = sorted(range(len(lengths)), key=lambda i: -lengths[i])
    rows: list[PackedRow] = []
    for idx in order:
        for row in rows:
            if row.fits(lengths[idx]):
                row.add(idx, lengths[idx])
                break
        else:
            row = PackedRow(capacity)
            row.add(idx, lengths[idx])
            rows.append(row)
    return rows


def packing_efficiency(lengths: Sequence[int], capacity: int) -> float:
    """Useful-token fraction achieved by packing."""
    rows = pack_prompts(lengths, capacity)
    return sum(lengths) / (len(rows) * capacity)


def padded_efficiency(lengths: Sequence[int]) -> float:
    """Useful-token fraction of the naive pad-to-longest batch."""
    if not lengths:
        raise ValueError("no prompts")
    return sum(lengths) / (len(lengths) * max(lengths))


def score_packed(model: ReferenceTransformer,
                 prompts: Sequence[np.ndarray], capacity: int,
                 pad_token: int = 0) -> list[np.ndarray]:
    """Score every prompt with packed forward passes.

    Returns, per prompt, its logits ``[len(prompt), vocab]`` — identical
    to ``model.forward`` on the prompt alone.  Rows are padded to
    ``capacity`` with a throwaway segment so shapes stay rectangular.
    """
    lengths = [len(p) for p in prompts]
    rows = pack_prompts(lengths, capacity)
    results: list[np.ndarray | None] = [None] * len(prompts)
    for row in rows:
        tokens = np.full((1, capacity), pad_token, dtype=int)
        segments = np.full((1, capacity), len(row.prompt_ids), dtype=int)
        for seg, (pid, offset) in enumerate(zip(row.prompt_ids,
                                                row.offsets)):
            tokens[0, offset:offset + lengths[pid]] = prompts[pid]
            segments[0, offset:offset + lengths[pid]] = seg
        logits = model.forward_packed(tokens, segments)
        for pid, offset in zip(row.prompt_ids, row.offsets):
            results[pid] = logits[0, offset:offset + lengths[pid]]
    return results  # type: ignore[return-value]
