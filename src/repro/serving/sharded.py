"""Two-phase serving on the partitioned model (Section 4.4, end to end).

The reference ``TwoPhaseServer`` demonstrates the scheduling; this module
runs the same recipe on ``ShardedTransformer`` backends: a batch-1
prefill model (head-sharded attention — a single sequence cannot be split
over batch) feeds a batch-N decode model (batch-sharded multiquery), with
host-mediated cache merging in between.  Weights are shared between the
two models via :meth:`ShardedTransformer.with_plan` whenever their
storage layouts match, exactly as deployed in the paper.

When a tracer is installed on the shared mesh
(:meth:`VirtualMesh.install_tracer`), the server wraps each prefill in a
per-request span tree and each decode batch in a region tagged with the
participating request ids; a tracer built with an
:class:`~repro.events.EventLog` then joins the span timeline to the
serving/fault event timeline via ``request_span`` events.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Sequence

import numpy as np

from repro.layouts.kv_cache import ShardedKVCache
from repro.layouts.model import ShardedTransformer
from repro.model.sampling import greedy
from repro.serving.engine import Completion, Request
from repro.serving.scheduler import group_requests


def merge_sharded_caches(per_request: Sequence[Sequence[ShardedKVCache]],
                         decode_model: ShardedTransformer
                         ) -> list[ShardedKVCache]:
    """Concatenate per-request caches and reshard for the decode model.

    The merge is host-mediated (one KV-sized copy per request), matching
    the prefill-server -> decode-server hand-off the paper describes.
    All caches must have equal length (the scheduler groups by prompt
    length).
    """
    if not per_request:
        raise ValueError("cannot merge an empty list of request caches")
    lengths = {caches[0].length for caches in per_request}
    if len(lengths) != 1:
        raise ValueError(f"cannot merge caches of different lengths "
                         f"{sorted(lengths)}; group requests by length")
    length = lengths.pop()
    batch = sum(caches[0].global_shape[0] for caches in per_request)
    cfg = decode_model.config
    merged = []
    n_layers = len(per_request[0])
    # The cache records its element dtype; probing a shard would depend
    # on the backend's storage layout (object array vs dense stack).
    dtype = per_request[0][0].dtype
    for layer in range(n_layers):
        k_parts, v_parts = [], []
        for caches in per_request:
            k_sh, v_sh = caches[layer].as_sharded()
            k_parts.append(k_sh.to_global())
            v_parts.append(v_sh.to_global())
        k_global = np.concatenate(k_parts, axis=0)
        v_global = np.concatenate(v_parts, axis=0)
        cache = ShardedKVCache(decode_model.mesh,
                               decode_model.cache_spec(), batch,
                               caches[layer].max_len, cfg.n_kv_heads,
                               cfg.d_head, dtype=dtype,
                               arena=getattr(decode_model, "kv_arena",
                                             None))
        from repro.mesh import ShardedTensor

        k_t = ShardedTensor.from_global(decode_model.mesh, k_global,
                                        cache.spec)
        v_t = ShardedTensor.from_global(decode_model.mesh, v_global,
                                        cache.spec)
        cache.load_prefix(k_t, v_t, length)
        merged.append(cache)
    return merged


class ShardedTwoPhaseServer:
    """Batch-1 prefill -> batch-N decode on partitioned models."""

    def __init__(self, prefill_model: ShardedTransformer,
                 decode_model: ShardedTransformer,
                 decode_batch: int = 64, sampler=None, seed: int = 0):
        if prefill_model.weights is not decode_model.weights:
            raise ValueError(
                "prefill and decode models must share weights")
        self.prefill_model = prefill_model
        self.decode_model = decode_model
        self.decode_batch = decode_batch
        self.sampler = sampler or (lambda logits, rng: greedy(logits))
        self.rng = np.random.default_rng(seed)

    def _tracer(self):
        return getattr(self.prefill_model.mesh, "tracer", None)

    def _serve_group(self, group: list[Request]) -> list[Completion]:
        tracer = self._tracer()
        n_steps = max(r.max_new_tokens for r in group)
        max_len = len(group[0].prompt) + n_steps
        caches_per_request, first_logits = [], []
        for request in group:
            with (tracer.request(request.request_id) if tracer is not None
                  else nullcontext()):
                logits, caches = self.prefill_model.prefill(
                    request.prompt[None, :], max_len)
            caches_per_request.append(caches)
            first_logits.append(logits)
        caches = merge_sharded_caches(caches_per_request,
                                      self.decode_model)
        current = self.sampler(np.concatenate(first_logits, axis=0),
                               self.rng)
        generated = [current[:, None]]
        decode_region = (tracer.region(
            "decode_batch", request_ids=[r.request_id for r in group])
            if tracer is not None else nullcontext())
        with decode_region:
            for _ in range(n_steps - 1):
                logits = self.decode_model.decode_step(current, caches)
                current = self.sampler(logits, self.rng)
                generated.append(current[:, None])
        all_generated = np.concatenate(generated, axis=1)
        completions = []
        for i, request in enumerate(group):
            n = request.max_new_tokens
            tokens = np.concatenate([request.prompt,
                                     all_generated[i, :n]])
            completions.append(Completion(request.request_id, tokens, n))
        return completions

    def serve(self, requests: Sequence[Request]) -> list[Completion]:
        completions: dict[int, Completion] = {}
        for group in group_requests(requests, self.decode_batch):
            for completion in self._serve_group(group):
                completions[completion.request_id] = completion
        return [completions[r.request_id] for r in requests]
