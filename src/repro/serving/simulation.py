"""Request-level serving simulation on the analytical cost model.

The paper frames its results through two applications — interactive
chatbots with tight latency targets and offline high-throughput inference
(Sections 1, 2.1).  This module makes that tradeoff executable: seeded
Poisson arrivals feed a batching server whose per-batch prefill/decode
times come from :class:`~repro.perf.estimator.InferenceEstimator`, and the
output is the latency distribution and achieved throughput of the whole
service.

The server model: requests queue FIFO; when the server is free it takes
up to ``max_batch`` requests (waiting at most ``max_wait_s`` for the
first-queued request — a deadline batching policy), runs one prefill over
the batch and then ``gen_len`` decode steps, and completes all requests
in the batch together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.partitioning.plan import LayoutPlan
from repro.perf.estimator import InferenceEstimator


@dataclass(frozen=True)
class WorkloadSpec:
    """Homogeneous request shape (the FT benchmarks' style)."""

    input_len: int
    gen_len: int


@dataclass(frozen=True)
class ServerConfig:
    max_batch: int
    max_wait_s: float
    prefill_plan: LayoutPlan
    decode_plan: LayoutPlan


@dataclass
class RequestRecord:
    arrival_s: float
    start_s: float = 0.0
    finish_s: float = 0.0

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def queueing_s(self) -> float:
        return self.start_s - self.arrival_s


@dataclass
class ServingReport:
    """Aggregate results of one simulated run."""

    records: list[RequestRecord]
    duration_s: float
    busy_s: float
    batch_sizes: list[int] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return len(self.records)

    def latency_percentile(self, q: float) -> float:
        return float(np.percentile([r.latency_s for r in self.records], q))

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean([r.latency_s for r in self.records]))

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s

    @property
    def utilization(self) -> float:
        return self.busy_s / self.duration_s

    @property
    def mean_batch(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0


def poisson_arrivals(rate_rps: float, duration_s: float, seed: int = 0
                     ) -> list[float]:
    """Seeded Poisson arrival times within ``[0, duration_s)``."""
    if rate_rps <= 0:
        raise ValueError("rate must be positive")
    rng = np.random.default_rng(seed)
    times, t = [], 0.0
    while True:
        t += rng.exponential(1.0 / rate_rps)
        if t >= duration_s:
            return times
        times.append(t)


def batch_service_time(estimator: InferenceEstimator, config: ServerConfig,
                       workload: WorkloadSpec, batch: int) -> float:
    """One batch's prefill + generation time from the analytical model."""
    prefill = estimator.prefill_cost(config.prefill_plan, batch,
                                     workload.input_len)
    generate = estimator.generate_cost(config.decode_plan, batch,
                                       workload.input_len,
                                       workload.gen_len)
    return prefill.time_s + generate.total_s


def simulate_serving(estimator: InferenceEstimator, config: ServerConfig,
                     workload: WorkloadSpec, arrivals: Sequence[float],
                     drain: bool = True) -> ServingReport:
    """Run the queueing simulation over the given arrival times."""
    if config.max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    if config.max_wait_s < 0:
        raise ValueError("max_wait_s must be >= 0")
    # Service times per batch size, memoized (the estimator is pure).
    service_cache: dict[int, float] = {}

    def service(batch: int) -> float:
        if batch not in service_cache:
            service_cache[batch] = batch_service_time(
                estimator, config, workload, batch)
        return service_cache[batch]

    pending = list(arrivals)
    records: list[RequestRecord] = []
    batches: list[int] = []
    now = 0.0
    busy = 0.0
    while pending:
        head = pending[0]
        # The server waits for the head request, then up to max_wait_s
        # (or until the batch fills) before launching.
        launch = max(now, head) if config.max_wait_s == 0 else max(
            now, head + config.max_wait_s)
        ready = [t for t in pending if t <= launch][:config.max_batch]
        if len(ready) == config.max_batch:
            # A full batch launches as soon as its last member arrives.
            launch = max(now, ready[-1])
        batch = len(ready)
        del pending[:batch]
        duration = service(batch)
        finish = launch + duration
        busy += duration
        for arrival in ready:
            records.append(RequestRecord(arrival_s=arrival,
                                         start_s=launch, finish_s=finish))
        batches.append(batch)
        now = finish
    horizon = max((r.finish_s for r in records), default=0.0) if drain \
        else max(arrivals, default=0.0)
    return ServingReport(records=records, duration_s=max(horizon, 1e-12),
                         busy_s=busy, batch_sizes=batches)
