"""Request-level serving simulation on the analytical cost model.

The paper frames its results through two applications — interactive
chatbots with tight latency targets and offline high-throughput inference
(Sections 1, 2.1).  This module makes that tradeoff executable: seeded
Poisson arrivals feed a batching server whose per-batch prefill/decode
times come from :class:`~repro.perf.estimator.InferenceEstimator`, and the
output is the latency distribution and achieved throughput of the whole
service.

The server model: requests queue FIFO; when the server is free it takes
up to ``max_batch`` requests (waiting at most ``max_wait_s`` for the
first-queued request — a deadline batching policy), runs one prefill over
the batch and then ``gen_len`` decode steps, and completes all requests
in the batch together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.partitioning.plan import LayoutPlan
from repro.perf.estimator import InferenceEstimator


@dataclass(frozen=True)
class WorkloadSpec:
    """Homogeneous request shape (the FT benchmarks' style)."""

    input_len: int
    gen_len: int


@dataclass(frozen=True)
class ServerConfig:
    max_batch: int
    max_wait_s: float
    prefill_plan: LayoutPlan
    decode_plan: LayoutPlan


@dataclass
class RequestRecord:
    arrival_s: float
    start_s: float = 0.0
    finish_s: float = 0.0

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def queueing_s(self) -> float:
        return self.start_s - self.arrival_s


@dataclass
class ServingReport:
    """Aggregate results of one simulated run."""

    records: list[RequestRecord]
    duration_s: float
    busy_s: float
    batch_sizes: list[int] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return len(self.records)

    def latency_percentile(self, q: float) -> float:
        return float(np.percentile([r.latency_s for r in self.records], q))

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean([r.latency_s for r in self.records]))

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s

    @property
    def utilization(self) -> float:
        return self.busy_s / self.duration_s

    @property
    def mean_batch(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0


@dataclass(frozen=True)
class FaultModel:
    """Stochastic failure process for the availability simulation.

    Chip failures arrive as a Poisson process with mean time between
    failures ``mtbf_s``.  Each failure aborts the batch in flight (its
    requests are retried from scratch — decoding is greedy, so the retry
    is idempotent), costs ``replan_s`` of downtime to detect and replan
    onto a healthy sub-slice, and leaves the service degraded (service
    times multiplied by ``degraded_factor``) until the slice is repaired
    ``recovery_s`` after the failure.
    """

    mtbf_s: float
    replan_s: float = 2.0
    recovery_s: float = 60.0
    degraded_factor: float = 1.5
    seed: int = 0
    max_batch_retries: int = 8

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0:
            raise ValueError("mtbf_s must be positive")
        if self.degraded_factor < 1.0:
            raise ValueError("degraded_factor must be >= 1")


@dataclass
class FaultReport(ServingReport):
    """A :class:`ServingReport` plus failure/goodput accounting."""

    deadline_s: float | None = None
    failures: int = 0
    retried_requests: int = 0
    shed_requests: int = 0
    dropped_requests: int = 0
    downtime_s: float = 0.0

    @property
    def met_deadline(self) -> int:
        """Completions that finished within the deadline."""
        if self.deadline_s is None:
            return self.completed
        return sum(1 for r in self.records
                   if r.latency_s <= self.deadline_s)

    @property
    def goodput_rps(self) -> float:
        """In-deadline completions per second — the paper's 'good' work."""
        return self.met_deadline / self.duration_s

    @property
    def availability(self) -> float:
        """Fraction of wall-clock the service was not down replanning."""
        return max(0.0, 1.0 - self.downtime_s / self.duration_s)


def poisson_arrivals(rate_rps: float, duration_s: float, seed: int = 0
                     ) -> list[float]:
    """Seeded Poisson arrival times within ``[0, duration_s)``."""
    if rate_rps <= 0:
        raise ValueError("rate must be positive")
    rng = np.random.default_rng(seed)
    times, t = [], 0.0
    while True:
        t += rng.exponential(1.0 / rate_rps)
        if t >= duration_s:
            return times
        times.append(t)


def batch_service_time(estimator: InferenceEstimator, config: ServerConfig,
                       workload: WorkloadSpec, batch: int) -> float:
    """One batch's prefill + generation time from the analytical model."""
    prefill = estimator.prefill_cost(config.prefill_plan, batch,
                                     workload.input_len)
    generate = estimator.generate_cost(config.decode_plan, batch,
                                       workload.input_len,
                                       workload.gen_len)
    return prefill.time_s + generate.total_s


def simulate_serving(estimator: InferenceEstimator, config: ServerConfig,
                     workload: WorkloadSpec, arrivals: Sequence[float],
                     drain: bool = True) -> ServingReport:
    """Run the queueing simulation over the given arrival times."""
    if config.max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    if config.max_wait_s < 0:
        raise ValueError("max_wait_s must be >= 0")
    # Service times per batch size, memoized (the estimator is pure).
    service_cache: dict[int, float] = {}

    def service(batch: int) -> float:
        if batch not in service_cache:
            service_cache[batch] = batch_service_time(
                estimator, config, workload, batch)
        return service_cache[batch]

    pending = list(arrivals)
    records: list[RequestRecord] = []
    batches: list[int] = []
    now = 0.0
    busy = 0.0
    while pending:
        head = pending[0]
        # The server waits for the head request, then up to max_wait_s
        # (or until the batch fills) before launching.
        launch = max(now, head) if config.max_wait_s == 0 else max(
            now, head + config.max_wait_s)
        ready = [t for t in pending if t <= launch][:config.max_batch]
        if len(ready) == config.max_batch:
            # A full batch launches as soon as its last member arrives.
            launch = max(now, ready[-1])
        batch = len(ready)
        del pending[:batch]
        duration = service(batch)
        finish = launch + duration
        busy += duration
        for arrival in ready:
            records.append(RequestRecord(arrival_s=arrival,
                                         start_s=launch, finish_s=finish))
        batches.append(batch)
        now = finish
    horizon = max((r.finish_s for r in records), default=0.0) if drain \
        else max(arrivals, default=0.0)
    return ServingReport(records=records, duration_s=max(horizon, 1e-12),
                         busy_s=busy, batch_sizes=batches)


def simulate_serving_under_faults(estimator: InferenceEstimator,
                                  config: ServerConfig,
                                  workload: WorkloadSpec,
                                  arrivals: Sequence[float],
                                  faults: FaultModel,
                                  deadline_s: float | None = None
                                  ) -> FaultReport:
    """The queueing simulation with an MTBF-driven failure process.

    Extends :func:`simulate_serving` with the resilient lifecycle's cost
    structure: a failure mid-batch aborts it (wasted work stays counted
    as busy time), the server is down for ``replan_s``, the batch retries
    at degraded speed, and with a deadline set, requests that can no
    longer make it are shed at launch instead of served late.  Reports
    goodput (in-deadline completions per second) and availability on top
    of the usual latency distribution.
    """
    if config.max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    if config.max_wait_s < 0:
        raise ValueError("max_wait_s must be >= 0")
    rng = np.random.default_rng(faults.seed)
    service_cache: dict[int, float] = {}

    def service(batch: int) -> float:
        if batch not in service_cache:
            service_cache[batch] = batch_service_time(
                estimator, config, workload, batch)
        return service_cache[batch]

    next_failure = rng.exponential(faults.mtbf_s)
    degraded_until = 0.0
    downtime = 0.0
    failures = retried = shed_count = dropped = 0
    pending = list(arrivals)
    records: list[RequestRecord] = []
    batches: list[int] = []
    now = 0.0
    busy = 0.0
    while pending:
        head = pending[0]
        launch = max(now, head) if config.max_wait_s == 0 else max(
            now, head + config.max_wait_s)
        ready = [t for t in pending if t <= launch][:config.max_batch]
        if len(ready) == config.max_batch:
            launch = max(now, ready[-1])
        del pending[:len(ready)]
        # Failures striking while the server sits idle still cost a
        # replan before the next batch can launch.
        while next_failure <= launch:
            failures += 1
            downtime += faults.replan_s
            degraded_until = next_failure + faults.recovery_s
            launch = max(launch, next_failure + faults.replan_s)
            next_failure += rng.exponential(faults.mtbf_s)
        # Admission control: shed what cannot meet its deadline even if
        # launched right now (conservative: full-batch service time).
        estimate = service(len(ready))
        if launch < degraded_until:
            estimate *= faults.degraded_factor
        admitted = []
        for arrival in ready:
            if deadline_s is not None and \
                    launch + estimate > arrival + deadline_s:
                shed_count += 1
            else:
                admitted.append(arrival)
        if not admitted:
            now = launch
            continue
        batch = len(admitted)
        attempts = 0
        while True:
            factor = faults.degraded_factor if launch < degraded_until \
                else 1.0
            duration = service(batch) * factor
            if next_failure >= launch + duration:
                break
            # The batch dies mid-flight: its partial work is wasted (but
            # the chips were busy), the server replans, and the batch
            # retries from scratch — idempotent under greedy decoding.
            failures += 1
            retried += batch
            attempts += 1
            busy += next_failure - launch
            downtime += faults.replan_s
            degraded_until = next_failure + faults.recovery_s
            launch = next_failure + faults.replan_s
            next_failure += rng.exponential(faults.mtbf_s)
            if attempts >= faults.max_batch_retries:
                dropped += batch
                batch = 0
                break
        if batch == 0:
            now = launch
            continue
        finish = launch + duration
        busy += duration
        for arrival in admitted:
            records.append(RequestRecord(arrival_s=arrival,
                                         start_s=launch, finish_s=finish))
        batches.append(batch)
        now = finish
    horizon = max((r.finish_s for r in records), default=0.0)
    horizon = max(horizon, max(arrivals, default=0.0))
    return FaultReport(records=records, duration_s=max(horizon, 1e-12),
                       busy_s=busy, batch_sizes=batches,
                       deadline_s=deadline_s, failures=failures,
                       retried_requests=retried, shed_requests=shed_count,
                       dropped_requests=dropped, downtime_s=downtime)
