"""Seeded backoff schedules shared by every retry loop in the stack.

Retries appear in three places — the single-mesh resilient lifecycle
(:mod:`repro.serving.resilient`), the cluster failover path, and the
disaggregated KV-handoff transaction (:mod:`repro.cluster.disagg`) —
and all of them run on *virtual* clocks, so their backoff schedules
must be pure functions of their inputs.  Two forms:

* :func:`exponential_backoff_s` — the classic deterministic schedule
  ``base_s * factor ** (attempt - 1)``, capped at ``max_s``.
  :meth:`repro.serving.resilient.CostModel.backoff_s` delegates here,
  so legacy retry timings are bit-identical to what they always were.
* :func:`jittered_backoff_s` — the same schedule with *seeded* jitter:
  the delay is drawn uniformly from ``[(1 - jitter) * exp, exp]`` using
  ``numpy``'s ``default_rng`` seeded by ``(seed, key, attempt)``.  Two
  retry loops with different ``key``\\ s (the KV handoff uses the group
  id) de-synchronize instead of thundering-herding, yet every run under
  one seed replays bit-identically.

    >>> exponential_backoff_s(3, base_s=0.05)
    0.2
    >>> jittered_backoff_s(1, base_s=0.1, jitter=0.0)
    0.1
    >>> a = jittered_backoff_s(2, base_s=0.1, seed=7, key=3)
    >>> a == jittered_backoff_s(2, base_s=0.1, seed=7, key=3)
    True
"""

from __future__ import annotations

import math

import numpy as np


def exponential_backoff_s(attempt: int, *, base_s: float,
                          factor: float = 2.0,
                          max_s: float = math.inf) -> float:
    """Deterministic exponential backoff before retry ``attempt``.

    ``attempt`` is 1-based: the first retry waits ``base_s``, each later
    one ``factor`` times longer, never more than ``max_s``.
    """
    if attempt < 1:
        raise ValueError(f"attempt is 1-based, got {attempt}")
    if base_s < 0:
        raise ValueError(f"base_s must be >= 0, got {base_s}")
    return min(base_s * (factor ** (attempt - 1)), max_s)


def jittered_backoff_s(attempt: int, *, base_s: float,
                       factor: float = 2.0, max_s: float = math.inf,
                       jitter: float = 0.5, seed: int = 0,
                       key: int = 0) -> float:
    """Seeded jittered exponential backoff before retry ``attempt``.

    The exponential envelope is :func:`exponential_backoff_s`; the
    returned delay is drawn uniformly from ``[(1 - jitter) * env, env]``
    by a generator seeded with ``(seed, key, attempt)`` — so the
    schedule is a pure function of its arguments (same seed, same key,
    same attempt, same delay) while distinct ``key``\\ s (e.g. distinct
    handoff groups) spread their retries apart.  ``jitter=0`` reduces
    exactly to the deterministic schedule.
    """
    if not 0.0 <= jitter <= 1.0:
        raise ValueError(f"jitter must be in [0, 1], got {jitter}")
    envelope = exponential_backoff_s(attempt, base_s=base_s,
                                     factor=factor, max_s=max_s)
    if jitter == 0.0:
        return envelope
    u = float(np.random.default_rng((seed, key, attempt)).random())
    return envelope * (1.0 - jitter + jitter * u)
