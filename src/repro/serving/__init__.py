"""Serving layer: engines, scheduling, packing, the two-phase recipe."""

from repro.serving.chunked import chunked_prefill, chunked_prefill_cost
from repro.serving.continuous import (
    ContinuousBatchingEngine,
    SlotState,
    slot_decode_step,
)
from repro.serving.engine import (
    Completion,
    InferenceEngine,
    Request,
    TwoPhaseServer,
    merge_caches,
)
from repro.serving.packing import (
    pack_prompts,
    packing_efficiency,
    padded_efficiency,
    score_packed,
)
from repro.serving.resilient import (
    CostModel,
    RequestOutcome,
    RequestStatus,
    ResilientContinuousServer,
    ResilientRequest,
    ResilientTwoPhaseServer,
)
from repro.serving.scheduler import group_requests
from repro.serving.sharded import ShardedTwoPhaseServer, merge_sharded_caches

__all__ = [
    "Completion",
    "ContinuousBatchingEngine",
    "CostModel",
    "RequestOutcome",
    "RequestStatus",
    "ResilientContinuousServer",
    "ResilientRequest",
    "ResilientTwoPhaseServer",
    "SlotState",
    "slot_decode_step",
    "InferenceEngine",
    "Request",
    "ShardedTwoPhaseServer",
    "TwoPhaseServer",
    "chunked_prefill",
    "chunked_prefill_cost",
    "group_requests",
    "merge_caches",
    "merge_sharded_caches",
    "pack_prompts",
    "packing_efficiency",
    "padded_efficiency",
    "score_packed",
]
