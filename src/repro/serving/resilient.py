"""Resilient request lifecycle: detect -> replan -> retry -> shed.

The two-phase recipe in :mod:`repro.serving.sharded` assumes the mesh
stays healthy for the whole run.  This module wraps it (and the
continuous-batching engine) with the failure handling a production
deployment needs:

* **Detection** — the collectives raise typed
  :class:`~repro.mesh.faults.MeshFault` errors instead of returning
  garbage; under SPMD the first collective after a chip dies surfaces it.
* **Replanning** — on a :class:`~repro.mesh.faults.ChipFailure` the server
  rebuilds its prefill/decode models on the largest healthy sub-slice via
  :func:`~repro.partitioning.degraded.replan_after_failure`.  Stragglers
  are detected by deadline projection and evicted the same way, with live
  KV caches migrated to the new mesh where the old mesh's data is still
  readable.
* **Bounded retry** — requests whose batch died are retried with
  exponential backoff by re-prefilling from the prompt.  Decoding is
  greedy, so a retry is idempotent: completed requests' tokens are
  bit-identical to a fault-free run no matter where the failure landed.
* **Admission control** — once degraded, the server sheds requests whose
  deadline cannot be met at the reduced capacity instead of burning the
  shrunken mesh on work it will throw away.

Every decision is recorded in an :class:`~repro.events.EventLog`, so
tests (and operators) can assert the full
detect -> replan -> retry timeline.

Wall-clock is *simulated*: a :class:`CostModel` charges per model
invocation, scaled by ``full_chips / current_chips`` once degraded, plus
any straggler delay accumulated by the fault state.  This keeps the
lifecycle logic (deadlines, backoff, shedding) deterministic and testable
without timers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

import numpy as np

from repro.events import (
    FAULT_DETECTED,
    FAULT_INJECTED,
    REPLANNED,
    REQUEST_COMPLETED,
    REQUEST_FAILED,
    REQUEST_RETRIED,
    REQUEST_SHED,
    EventLog,
)
from repro.hardware.topology import Torus3D
from repro.mesh import VirtualMesh
from repro.mesh.capture import StepCompiler
from repro.mesh.faults import ChipFailure, FaultPlan, MeshFault
from repro.model.sampling import greedy
from repro.partitioning.degraded import (
    largest_healthy_subslice,
    migrate_caches,
    plan_batch_group,
    replan_after_failure,
    select_degraded_plan,
)
from repro.partitioning.selector import Phase
from repro.serving.backoff import exponential_backoff_s
from repro.serving.chunked import default_prefill_chunk
from repro.serving.continuous import ContinuousBatchingEngine
from repro.serving.engine import Completion, Request
from repro.serving.scheduler import group_requests
from repro.serving.sharded import merge_sharded_caches


class RequestStatus(str, Enum):
    """Terminal state of a request's lifecycle."""

    COMPLETED = "completed"            # finished within its deadline
    DEADLINE_MISSED = "deadline_missed"  # finished, but too late
    SHED = "shed"                      # refused: deadline unmeetable
    FAILED = "failed"                  # retry budget exhausted


@dataclass(frozen=True)
class ResilientRequest:
    """A request plus its lifecycle policy knobs."""

    request: Request
    deadline_s: float | None = None    # None = no deadline
    max_retries: int = 3


@dataclass
class RequestOutcome:
    """What ultimately happened to one request."""

    request_id: int
    status: RequestStatus
    completion: Completion | None = None
    retries: int = 0
    finish_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.COMPLETED


@dataclass(frozen=True)
class CostModel:
    """Simulated wall-clock charges for lifecycle accounting.

    Per-invocation costs are multiplied by ``full_chips / current_chips``
    once the mesh is degraded (fewer chips -> proportionally slower), and
    straggler delay from :attr:`FaultState.sim_delay_s` is added on top.

    The optional profile factor tables model the Section 3.2 Pareto gap
    between partitioning plans: a replica running the named profile pays
    ``base * factor`` per invocation.  Both default empty — every
    profile then costs the base rate, which keeps legacy scenarios and
    benchmark numbers exactly as they were.  Tuples (not dicts) keep the
    dataclass hashable and frozen-safe.
    """

    prefill_s: float = 0.02
    decode_step_s: float = 0.002
    replan_s: float = 0.25
    backoff_base_s: float = 0.05
    #: ``((profile, factor), ...)`` multipliers for prefill invocations,
    #: keyed by the replica's *prefill* profile (see
    #: :meth:`repro.cluster.replica.Replica.switch_prefill_profile`).
    prefill_profile_factors: tuple[tuple[str, float], ...] = ()
    #: Same, for decode steps, keyed by the decode profile.
    decode_profile_factors: tuple[tuple[str, float], ...] = ()

    def backoff_s(self, attempt: int) -> float:
        """Exponential backoff before retry ``attempt`` (1-based).

        Delegates to the shared schedule helper
        (:func:`repro.serving.backoff.exponential_backoff_s`) with this
        model's base — bit-identical to the historical inline
        ``base * 2 ** (attempt - 1)``.
        """
        return exponential_backoff_s(attempt, base_s=self.backoff_base_s)

    def prefill_cost_s(self, profile: str = "balanced") -> float:
        """Per-request prefill charge under the given prefill profile."""
        return self.prefill_s * dict(self.prefill_profile_factors).get(
            profile, 1.0)

    def decode_cost_s(self, profile: str = "balanced") -> float:
        """Per-step decode charge under the given decode profile."""
        return self.decode_step_s * dict(self.decode_profile_factors).get(
            profile, 1.0)


class CacheMigrationFailed(MeshFault):
    """Straggler eviction could not migrate live caches; re-prefill."""


class ResilientTwoPhaseServer:
    """Two-phase serving with detect -> replan -> retry -> shed.

    Owns its deployment: builds shared-weight prefill/decode
    ``ShardedTransformer`` models on ``mesh`` (plans chosen by the
    degraded-mesh selector unless given), installs ``fault_plan`` on the
    mesh, and drives the fault clock with one tick per model invocation
    (phase ``"prefill"`` or ``"decode"``) so scheduled faults land at
    reproducible points in the request lifecycle.
    """

    def __init__(self, weights, mesh: VirtualMesh, *,
                 decode_batch: int = 8,
                 prefill_plan=None, decode_plan=None,
                 fault_plan: FaultPlan | None = None,
                 costs: CostModel | None = None,
                 event_log: EventLog | None = None,
                 prompt_len_hint: int = 64):
        from repro.layouts.model import ShardedTransformer

        if decode_batch < 1:
            raise ValueError("decode_batch must be >= 1")
        self.weights = weights
        self.mesh = mesh
        self.decode_batch = decode_batch
        self.costs = costs or CostModel()
        self.events = event_log if event_log is not None else EventLog()
        self.full_chips = mesh.num_chips
        self.now_s = 0.0

        config = weights.config
        torus = Torus3D(*mesh.shape)
        if decode_plan is None:
            decode_plan = select_degraded_plan(
                config, torus, Phase.DECODE, batch=decode_batch,
                tokens_per_seq=1)
        if prefill_plan is None:
            prefill_plan = select_degraded_plan(
                config, torus, Phase.PREFILL, batch=1,
                tokens_per_seq=prompt_len_hint)
        self.decode_model = ShardedTransformer(weights, mesh, decode_plan)
        try:
            self.prefill_model = self.decode_model.with_plan(prefill_plan)
        except ValueError:
            self.prefill_model = ShardedTransformer(weights, mesh,
                                                    prefill_plan)
        self.fault_state = None
        if fault_plan is not None:
            self.fault_state = mesh.install_faults(fault_plan, self.events)
        # Decode steps run through the capture-and-replay compiler: the
        # first post-warmup quiescent step is traced once, later steps
        # replay it bit-identically; replanning (below) invalidates the
        # program and the next healthy step re-captures on the new mesh.
        self.step_compiler = StepCompiler()

    # -- simulated clock ---------------------------------------------------

    @property
    def scale(self) -> float:
        """Slowdown factor of the current (possibly degraded) mesh."""
        return self.full_chips / self.mesh.num_chips

    def _delay(self) -> float:
        return self.fault_state.sim_delay_s if self.fault_state else 0.0

    def _advance(self, phase: str) -> None:
        if self.fault_state is not None:
            self.fault_state.advance(phase)

    def _charge(self, base_s: float, delay_before: float) -> float:
        """Charge one model invocation; returns the straggler delay part."""
        delay = self._delay() - delay_before
        self.now_s += base_s * self.scale + delay
        return delay

    def _estimate_s(self, wreq: ResilientRequest) -> float:
        """Service-time estimate for admission control, at current capacity."""
        c = self.costs
        return (c.prefill_s
                + wreq.request.max_new_tokens * c.decode_step_s) * self.scale

    # -- lifecycle ---------------------------------------------------------

    def serve(self, requests: Sequence[Request | ResilientRequest]
              ) -> list[RequestOutcome]:
        """Serve all requests; returns one outcome per request, in order."""
        wrapped = [r if isinstance(r, ResilientRequest)
                   else ResilientRequest(r) for r in requests]
        by_id = {w.request.request_id: w for w in wrapped}
        if len(by_id) != len(wrapped):
            raise ValueError("duplicate request ids")
        outcomes: dict[int, RequestOutcome] = {}
        for group in group_requests([w.request for w in wrapped],
                                    self.decode_batch):
            self._serve_group([by_id[r.request_id] for r in group],
                              outcomes)
        return [outcomes[w.request.request_id] for w in wrapped]

    def _serve_group(self, live: list[ResilientRequest],
                     outcomes: dict[int, RequestOutcome]) -> None:
        retries = {w.request.request_id: 0 for w in live}
        attempt = 0
        while live:
            # Admission control: shed anything the current (possibly
            # degraded) capacity cannot finish by its deadline.
            admitted = []
            for wreq in live:
                rid = wreq.request.request_id
                estimate = self._estimate_s(wreq)
                if wreq.deadline_s is not None and \
                        self.now_s + estimate > wreq.deadline_s:
                    outcomes[rid] = RequestOutcome(
                        rid, RequestStatus.SHED, retries=retries[rid],
                        finish_s=self.now_s)
                    self.events.record(
                        REQUEST_SHED, request_id=rid, t_s=self.now_s,
                        estimate_s=estimate, deadline_s=wreq.deadline_s)
                else:
                    admitted.append(wreq)
            live = admitted
            if not live:
                return
            try:
                completions = self._run_group(live)
            except MeshFault as exc:
                self.events.record(FAULT_DETECTED,
                                   error=type(exc).__name__,
                                   detail=str(exc), t_s=self.now_s)
                attempt += 1
                survivors = []
                for wreq in live:
                    rid = wreq.request.request_id
                    retries[rid] += 1
                    if retries[rid] > wreq.max_retries:
                        outcomes[rid] = RequestOutcome(
                            rid, RequestStatus.FAILED,
                            retries=retries[rid] - 1, finish_s=self.now_s)
                        self.events.record(
                            REQUEST_FAILED, request_id=rid,
                            retries=retries[rid] - 1,
                            error=type(exc).__name__)
                    else:
                        survivors.append(wreq)
                self._recover(exc)
                backoff = self.costs.backoff_s(attempt)
                self.now_s += backoff
                for wreq in survivors:
                    rid = wreq.request.request_id
                    self.events.record(
                        REQUEST_RETRIED, request_id=rid,
                        attempt=retries[rid], backoff_s=backoff,
                        mode="re-prefill", t_s=self.now_s)
                live = survivors
                continue
            for wreq, completion in zip(live, completions):
                rid = wreq.request.request_id
                met = wreq.deadline_s is None or self.now_s <= wreq.deadline_s
                status = (RequestStatus.COMPLETED if met
                          else RequestStatus.DEADLINE_MISSED)
                outcomes[rid] = RequestOutcome(
                    rid, status, completion=completion,
                    retries=retries[rid], finish_s=self.now_s)
                self.events.record(
                    REQUEST_COMPLETED, request_id=rid, t_s=self.now_s,
                    retries=retries[rid], met_deadline=met)
            return

    def _run_group(self, live: list[ResilientRequest]) -> list[Completion]:
        group = [w.request for w in live]
        n_steps = max(r.max_new_tokens for r in group)
        max_len = len(group[0].prompt) + n_steps
        deadlines = [w.deadline_s for w in live if w.deadline_s is not None]
        min_deadline = min(deadlines) if deadlines else None

        caches_per_request, first_logits = [], []
        for request in group:
            before = self._delay()
            self._advance("prefill")
            logits, caches = self.prefill_model.prefill(
                request.prompt[None, :], max_len)
            self._charge(self.costs.prefill_s, before)
            caches_per_request.append(caches)
            first_logits.append(logits)

        # Pad the decode batch up to the plan's batch-sharding divisor by
        # repeating the last request's caches.  The merge reads caches
        # host-side, so reusing the objects costs nothing; the padded
        # rows' tokens are simply dropped.
        batch_group = plan_batch_group(self.decode_model.plan,
                                       Torus3D(*self.mesh.shape))
        pad = (-len(group)) % max(batch_group, 1)
        for _ in range(pad):
            caches_per_request.append(caches_per_request[-1])
            first_logits.append(first_logits[-1])

        caches = merge_sharded_caches(caches_per_request, self.decode_model)
        current = greedy(np.concatenate(first_logits, axis=0))
        generated = [current[:, None]]
        # Decode through the compiler's fused window (1 unless
        # REPRO_CAPTURE_FUSE or the compiler say otherwise — at window 1
        # this is exactly the old single-step loop, same events, same
        # charges).  ``advance`` keeps the fault clock ticking once per
        # generated token either way; the fused path only engages when
        # the fault state is quiescent for the whole window, so faults
        # and stragglers always land on single-step machinery.
        step = 0
        while step < n_steps - 1:
            before = self._delay()
            sampled = self.step_compiler.decode_window(
                self.decode_model, current, caches,
                window=min(self.step_compiler.fuse_window,
                           n_steps - 1 - step),
                advance=lambda: self._advance("decode"))
            w = sampled.shape[0]
            step_delay = self._charge(self.costs.decode_step_s * w, before)
            current = sampled[-1]
            for row in sampled:
                generated.append(row[:, None])
            step += w
            caches = self._maybe_evict_stragglers(
                live, caches, min_deadline,
                remaining_steps=n_steps - 1 - step, step_delay=step_delay)

        all_generated = np.concatenate(generated, axis=1)
        completions = []
        for i, request in enumerate(group):
            n = request.max_new_tokens
            tokens = np.concatenate([request.prompt, all_generated[i, :n]])
            completions.append(Completion(request.request_id, tokens, n))
        return completions

    # -- recovery ----------------------------------------------------------

    def _recover(self, exc: MeshFault) -> None:
        """Repair the deployment before a retry.

        A :class:`ChipFailure` is permanent: replan onto the largest
        healthy sub-slice.  Timeouts and detected corruption are one-shot
        transients (and :class:`CacheMigrationFailed` means we already
        replanned), so the current deployment is reused as-is.
        """
        if isinstance(exc, ChipFailure):
            self._replan([exc.chip])

    def _replan(self, dead_chips) -> None:
        deploy = replan_after_failure(
            self.weights, self.mesh, dead_chips,
            decode_batch=self.decode_batch, event_log=self.events)
        if self.fault_state is not None:
            remaining = self.fault_state.remaining_plan(
                deploy.subslice.origin, deploy.subslice.shape)
            new_state = deploy.mesh.install_faults(remaining, self.events)
            # Carry the clock and accumulated delay across the swap so
            # later-scheduled faults still fire at their intended step.
            new_state.step = self.fault_state.step
            new_state.phase = self.fault_state.phase
            new_state.phase_steps = dict(self.fault_state.phase_steps)
            new_state.sim_delay_s = self.fault_state.sim_delay_s
            self.fault_state = new_state
        self.mesh = deploy.mesh
        self.prefill_model = deploy.prefill_model
        self.decode_model = deploy.decode_model
        # The captured program closed over the old mesh and models;
        # replay on the replanned deployment would be invalid (the
        # signature check would also catch this — the explicit
        # invalidation just makes re-capture immediate and counted).
        self.step_compiler.invalidate()
        self.now_s += self.costs.replan_s

    def _maybe_evict_stragglers(self, live, caches, min_deadline,
                                remaining_steps: int, step_delay: float):
        """Evict straggler chips when they put the group's deadline at risk.

        Stragglers never raise — they only show up as latency — so the
        serving layer projects the group's finish time and, if a deadline
        would be blown, replans without the slow chips and *migrates* the
        live KV caches (the old mesh's data is intact, unlike a chip
        death, so no recompute is needed).
        """
        if self.fault_state is None or min_deadline is None \
                or remaining_steps <= 0 or step_delay <= 0.0:
            return caches
        stragglers = sorted(self.fault_state.straggler_chips())
        if not stragglers:
            return caches
        projected = self.now_s + remaining_steps * (
            self.costs.decode_step_s * self.scale + step_delay)
        if projected <= min_deadline:
            return caches
        self.events.record(
            FAULT_DETECTED, error="StragglerFault",
            detail=f"straggler chips {stragglers} project finish "
                   f"{projected:.4f}s past deadline {min_deadline:.4f}s",
            t_s=self.now_s)
        old_decode = self.decode_model
        self._replan(stragglers)
        try:
            migrated = migrate_caches(caches, old_decode, self.decode_model)
        except ValueError as exc:
            raise CacheMigrationFailed(
                f"could not migrate caches to mesh {self.mesh.shape}: "
                f"{exc}") from exc
        for wreq in live:
            self.events.record(
                REQUEST_RETRIED, request_id=wreq.request.request_id,
                attempt=0, backoff_s=0.0, mode="cache-migration",
                t_s=self.now_s)
        return migrated


class ResilientContinuousServer:
    """Deadline/retry/shedding wrapper around the continuous engine.

    The reference-model engine has no mesh of its own, so scheduled
    failures can arrive two ways:

    * ``fail_at_steps`` lists global decode-step indices at which a chip
      failure fires through the engine's ``step_hook`` (each one-shot);
    * ``mesh`` + ``fault_plan`` attach a :class:`VirtualMesh` as the
      *health substrate*: every decode step runs one tiny heartbeat
      collective on it (through whichever execution backend the mesh
      uses), so kills and timeouts raise real :class:`MeshFault`\\ s and
      stragglers accumulate real simulated delay.  When that delay
      projects a deadline miss, the straggler chips are *evicted* — the
      mesh is replanned onto its largest healthy sub-slice (capacity
      drops to ``scale``; the delay stops).

    Recovery restarts the engine and re-serves every request the crashed
    run had not returned — idempotent because decoding is greedy, so
    completed tokens are bit-identical to a fault-free run.
    """

    def __init__(self, model, max_slots: int, max_len: int, *,
                 fail_at_steps: Sequence[int] = (),
                 mesh: VirtualMesh | None = None,
                 fault_plan: FaultPlan | None = None,
                 costs: CostModel | None = None,
                 event_log: EventLog | None = None, seed: int = 0,
                 prefill_chunk: int | None | str = "auto"):
        if fault_plan is not None and mesh is None:
            raise ValueError("fault_plan requires a mesh to install it on")
        self.model = model
        self.max_slots = max_slots
        self.max_len = max_len
        # Chunked prefill is the default admission path ("auto" reads
        # the REPRO_PREFILL_MODE / REPRO_PREFILL_CHUNK escape hatches);
        # resolved once here so every retry engine behaves identically.
        self.prefill_chunk = (default_prefill_chunk()
                              if prefill_chunk == "auto"
                              else prefill_chunk)
        self.costs = costs or CostModel()
        self.events = event_log if event_log is not None else EventLog()
        self.seed = seed
        self._fail_at = sorted(set(int(s) for s in fail_at_steps))
        self._steps_done = 0
        self.now_s = 0.0
        self.mesh = mesh
        self.full_chips = mesh.num_chips if mesh is not None else 1
        self.fault_state = None
        if mesh is not None and fault_plan is not None:
            self.fault_state = mesh.install_faults(fault_plan, self.events)
        self._extra_s = 0.0            # delay/replan charges within a run
        self._min_deadline: float | None = None
        self._remaining_hint = 0       # conservative steps left in the run

    @property
    def scale(self) -> float:
        """Slowdown factor of the (possibly degraded) health mesh."""
        if self.mesh is None:
            return 1.0
        return self.full_chips / self.mesh.num_chips

    def _heartbeat(self) -> float:
        """One probe collective on the health mesh; returns its straggler
        delay.  Raises the same typed faults real model collectives do."""
        from repro.mesh.ops import all_gather
        from repro.mesh.sharded_tensor import ShardedTensor

        state = self.fault_state
        before = state.sim_delay_s
        state.advance("decode")
        probe = ShardedTensor.from_global(
            self.mesh, np.zeros(self.mesh.num_chips), "V_xyz")
        all_gather(probe, ("x", "y", "z"), "V")
        return state.sim_delay_s - before

    def _evict_stragglers(self, local_step: int, step_delay: float) -> None:
        """Replan the health mesh around stragglers that endanger the
        earliest deadline in the current run (mirrors the two-phase
        server's eviction, at whole-mesh granularity)."""
        stragglers = sorted(self.fault_state.straggler_chips())
        if not stragglers or self._min_deadline is None:
            return
        remaining = max(self._remaining_hint - local_step, 0)
        sim_now = self.now_s + self._extra_s \
            + (local_step + 1) * self.costs.decode_step_s * self.scale
        projected = sim_now + remaining * (
            self.costs.decode_step_s * self.scale + step_delay)
        if projected <= self._min_deadline:
            return
        self.events.record(
            FAULT_DETECTED, error="StragglerFault",
            detail=f"straggler chips {stragglers} project finish "
                   f"{projected:.4f}s past deadline "
                   f"{self._min_deadline:.4f}s", t_s=sim_now)
        self._shrink_mesh(stragglers)

    def _shrink_mesh(self, bad_chips) -> None:
        """Rebuild the health mesh on its largest sub-slice avoiding
        ``bad_chips``, carrying the fault clock (the engine's reference
        model needs no resharding — only capacity and delay change)."""
        old_shape = self.mesh.shape
        sub = largest_healthy_subslice(old_shape, bad_chips)
        new_mesh = VirtualMesh(sub.shape, backend=self.mesh.backend)
        remaining_plan = self.fault_state.remaining_plan(sub.origin,
                                                         sub.shape)
        new_state = new_mesh.install_faults(remaining_plan, self.events)
        new_state.step = self.fault_state.step
        new_state.phase = self.fault_state.phase
        new_state.phase_steps = dict(self.fault_state.phase_steps)
        new_state.sim_delay_s = self.fault_state.sim_delay_s
        self.mesh = new_mesh
        self.fault_state = new_state
        self._extra_s += self.costs.replan_s
        self.events.record(REPLANNED, dead_chips=[tuple(c) for c
                                                  in bad_chips],
                           old_shape=old_shape, new_shape=sub.shape,
                           origin=sub.origin, prefill_plan="(unchanged)",
                           decode_plan="(unchanged)")

    def _step_hook(self, local_step: int) -> None:
        global_step = self._steps_done + local_step
        if self._fail_at and global_step >= self._fail_at[0]:
            at_step = self._fail_at.pop(0)
            self.events.record(
                FAULT_INJECTED, op="slot_decode_step", step=global_step,
                fault={"type": "ChipKill", "chip": (0, 0, 0),
                       "at_step": at_step})
            raise ChipFailure((0, 0, 0), "slot_decode_step", global_step)
        if self.fault_state is not None:
            step_delay = self._heartbeat()
            # Surcharge beyond the base per-step cost the caller already
            # accounts: straggler delay plus the degraded-capacity factor.
            self._extra_s += step_delay \
                + (self.scale - 1.0) * self.costs.decode_step_s
            if step_delay > 0.0:
                self._evict_stragglers(local_step, step_delay)

    def serve(self, requests: Sequence[Request | ResilientRequest]
              ) -> list[RequestOutcome]:
        wrapped = [r if isinstance(r, ResilientRequest)
                   else ResilientRequest(r) for r in requests]
        outcomes: dict[int, RequestOutcome] = {}
        retries = {w.request.request_id: 0 for w in wrapped}
        if len(retries) != len(wrapped):
            raise ValueError("duplicate request ids")

        # Admission control up front; the engine has a fixed capacity, so
        # the estimate is the request's own service time.
        pending = []
        for wreq in wrapped:
            rid = wreq.request.request_id
            estimate = self.costs.prefill_s + \
                wreq.request.max_new_tokens * self.costs.decode_step_s
            if wreq.deadline_s is not None and \
                    self.now_s + estimate > wreq.deadline_s:
                outcomes[rid] = RequestOutcome(
                    rid, RequestStatus.SHED, finish_s=self.now_s)
                self.events.record(REQUEST_SHED, request_id=rid,
                                   t_s=self.now_s, estimate_s=estimate,
                                   deadline_s=wreq.deadline_s)
            else:
                pending.append(wreq)

        attempt = 0
        while pending:
            deadlines = [w.deadline_s for w in pending
                         if w.deadline_s is not None]
            self._min_deadline = min(deadlines) if deadlines else None
            self._remaining_hint = max(w.request.max_new_tokens
                                       for w in pending)
            self._extra_s = 0.0
            engine = ContinuousBatchingEngine(
                self.model, self.max_slots, self.max_len, seed=self.seed,
                step_hook=self._step_hook,
                prefill_chunk=self.prefill_chunk)
            try:
                completions = engine.serve([w.request for w in pending])
            except MeshFault as exc:
                self._steps_done += engine.steps
                self.now_s += engine.admissions * self.costs.prefill_s + \
                    engine.steps * self.costs.decode_step_s + self._extra_s
                self._extra_s = 0.0
                self.events.record(FAULT_DETECTED,
                                   error=type(exc).__name__,
                                   detail=str(exc), t_s=self.now_s)
                if self.fault_state is not None:
                    # Permanent mesh faults (chip kills) must be replanned
                    # around, or the next heartbeat re-raises forever.
                    dead = sorted(self.fault_state.dead_chips)
                    if dead:
                        self._shrink_mesh(dead)
                        self.now_s += self._extra_s
                        self._extra_s = 0.0
                attempt += 1
                survivors = []
                for wreq in pending:
                    rid = wreq.request.request_id
                    retries[rid] += 1
                    if retries[rid] > wreq.max_retries:
                        outcomes[rid] = RequestOutcome(
                            rid, RequestStatus.FAILED,
                            retries=retries[rid] - 1, finish_s=self.now_s)
                        self.events.record(
                            REQUEST_FAILED, request_id=rid,
                            retries=retries[rid] - 1,
                            error=type(exc).__name__)
                    else:
                        survivors.append(wreq)
                backoff = self.costs.backoff_s(attempt)
                self.now_s += backoff
                for wreq in survivors:
                    rid = wreq.request.request_id
                    self.events.record(
                        REQUEST_RETRIED, request_id=rid,
                        attempt=retries[rid], backoff_s=backoff,
                        mode="re-prefill", t_s=self.now_s)
                pending = survivors
                continue
            self._steps_done += engine.steps
            self.now_s += engine.admissions * self.costs.prefill_s + \
                engine.steps * self.costs.decode_step_s + self._extra_s
            for wreq, completion in zip(pending, completions):
                rid = wreq.request.request_id
                met = wreq.deadline_s is None or self.now_s <= wreq.deadline_s
                status = (RequestStatus.COMPLETED if met
                          else RequestStatus.DEADLINE_MISSED)
                outcomes[rid] = RequestOutcome(
                    rid, status, completion=completion,
                    retries=retries[rid], finish_s=self.now_s)
                self.events.record(
                    REQUEST_COMPLETED, request_id=rid, t_s=self.now_s,
                    retries=retries[rid], met_deadline=met)
            pending = []
        return [outcomes[w.request.request_id] for w in wrapped]
