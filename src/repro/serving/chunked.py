"""Incremental (chunked) prefill — Section 3.5's last low-level item.

Long prompts can be prefilled in fixed-size chunks, each attending to the
KV cache built by earlier chunks (this is how FasterTransformer bounds
activation memory, and how a chat server folds new user turns into an
existing conversation cache).  Both the reference and the sharded models
support it directly because ``forward`` appends to the caches; this module
adds the driver plus the analytical cost of a chunked schedule.
"""

from __future__ import annotations

import os

import numpy as np

from repro.partitioning.plan import LayoutPlan
from repro.perf.estimator import InferenceEstimator, PhaseCost

#: Escape hatch back to whole-prompt prefill (``whole``/``off``); the
#: default is the chunked path everywhere a server admits prompts.
PREFILL_MODE_ENV = "REPRO_PREFILL_MODE"
#: Chunk size the default path uses (tokens per chunk).
PREFILL_CHUNK_ENV = "REPRO_PREFILL_CHUNK"
DEFAULT_PREFILL_CHUNK = 4


def default_prefill_chunk() -> int | None:
    """The serving layers' default prefill chunking, from the environment.

    Returns the chunk size (chunked prefill is the default, per the
    roadmap), or ``None`` when ``REPRO_PREFILL_MODE=whole`` asks for the
    legacy single-pass prefill.  Both paths are bit-identical; the knob
    exists for A/B comparison and for bisecting capture-cache behavior.
    """
    mode = os.environ.get(PREFILL_MODE_ENV, "chunked").strip().lower()
    if mode in ("whole", "off"):
        return None
    if mode != "chunked":
        raise ValueError(
            f"{PREFILL_MODE_ENV} must be 'chunked' or 'whole', got "
            f"{mode!r}")
    chunk = int(os.environ.get(PREFILL_CHUNK_ENV, DEFAULT_PREFILL_CHUNK))
    if chunk < 1:
        raise ValueError(f"{PREFILL_CHUNK_ENV} must be >= 1, got {chunk}")
    return chunk


def chunked_prefill(model, tokens: np.ndarray, chunk_size: int,
                    max_len: int, *, compiler=None, kvstore=None):
    """Prefill ``tokens`` ``[B, L]`` in chunks of ``chunk_size``.

    Works with any model exposing ``new_cache`` / ``forward`` (reference
    or sharded).  Returns ``(last_logits [B, V], caches)`` — identical to
    a single-pass prefill (asserted in tests).

    With ``compiler`` (a :class:`~repro.mesh.capture.StepCompiler`) each
    chunk runs through :meth:`~repro.mesh.capture.StepCompiler.
    prefill_chunk`: the first chunk of each length bucket is captured and
    every later same-shape chunk — including across prompts — replays
    the traced program, bit-identically.

    With ``kvstore`` (a :class:`~repro.kvstore.KVStore`; batch 1 only)
    the prompt's longest cached whole-page prefix is *installed* instead
    of computed — only the uncached suffix runs through the model — and
    the finished caches are committed back as new pages.  The store's
    page size must be a multiple of ``chunk_size`` so the suffix sees
    the exact chunk partitioning of the cold path, keeping hits
    bit-identical to the recompute (the differential tests' contract).
    The caller collects the pinned prefix via
    :meth:`~repro.kvstore.KVStore.take_last_reuse` and must release its
    lease once decode retires.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    batch, length = tokens.shape
    if max_len < length:
        raise ValueError(f"max_len {max_len} < prompt length {length}")
    if kvstore is not None and batch != 1:
        raise ValueError("kvstore prefix reuse requires batch-1 prefill")
    if kvstore is not None and kvstore.page_tokens % chunk_size != 0:
        raise ValueError(
            f"page_tokens {kvstore.page_tokens} must be a multiple of "
            f"chunk_size {chunk_size}")
    caches = model.new_cache(batch, max_len)
    start0 = 0
    lease = None
    if kvstore is not None:
        lease = kvstore.match(tokens[0])
        if lease is not None:
            start0 = kvstore.install(lease, caches)
    logits = None
    try:
        for start in range(start0, length, chunk_size):
            chunk = tokens[:, start:start + chunk_size]
            if compiler is not None:
                logits = compiler.prefill_chunk(model, chunk, caches)
            else:
                logits = model.forward(chunk, caches)
    except BaseException:
        # A fault mid-suffix must not leak the pin: the lease never
        # reaches the caller (``take_last_reuse``), so unpin here.
        if lease is not None:
            lease.release()
        raise
    if kvstore is not None:
        from repro.kvstore import PrefillReuse

        kvstore.commit(tokens[0], caches)
        kvstore.finish_prefill(PrefillReuse(
            lease=lease, matched_tokens=start0, total_tokens=length))
    return logits[:, -1], caches


def chunked_prefill_cost(estimator: InferenceEstimator, plan: LayoutPlan,
                         batch: int, input_len: int,
                         chunk_size: int) -> tuple[float, list[PhaseCost]]:
    """Total analytical time of a chunked prefill schedule.

    Each chunk is a forward pass over ``batch x chunk`` tokens with the
    previously cached context; the per-chunk costs are returned for
    inspection.  Chunking trades peak activation memory for repeated
    fixed overheads and lower matmul efficiency per chunk.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    costs = []
    done = 0
    while done < input_len:
        step = min(chunk_size, input_len - done)
        costs.append(estimator.phase_cost(plan, batch, step,
                                          context_before=done))
        done += step
    return sum(c.time_s for c in costs), costs
