"""Request batching for the two-phase server.

Groups requests by prompt length (merged KV caches must align; production
systems left-pad instead — see ``merge_caches``) and caps each group at
the decode batch size, preserving arrival order within a length class.
"""

from __future__ import annotations

from typing import Sequence

from repro.serving.engine import Request


def group_requests(requests: Sequence[Request], max_batch: int
                   ) -> list[list[Request]]:
    """Batch requests: same prompt length, at most ``max_batch`` each."""
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    by_length: dict[int, list[Request]] = {}
    order: list[int] = []
    for request in requests:
        length = len(request.prompt)
        if length not in by_length:
            by_length[length] = []
            order.append(length)
        by_length[length].append(request)
    groups = []
    for length in order:
        queue = by_length[length]
        for start in range(0, len(queue), max_batch):
            groups.append(queue[start:start + max_batch])
    return groups
