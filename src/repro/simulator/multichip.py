"""Multi-chip simulation with heterogeneity (straggler analysis).

The paper's SPMD execution model makes every collective a synchronization
point: all participating chips must reach it, and it completes for
everyone when the slowest arrives.  A consequence production systems care
about — and the single-chip simulator cannot show — is that *one* slow
chip (thermal throttling, a flaky HBM stack) drags the whole slice down.

``simulate_spmd`` runs the same op DAG on N virtual chips with per-chip
speed factors.  Local ops (``mxu``/``hbm``) scale with the chip's speed;
``ici`` ops are barriers: every chip must arrive, and they finish
together.  The result exposes per-chip finish times and the slice-level
slowdown, with the analytic property (tested) that the makespan is
governed by the slowest chip's local work plus the shared communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.simulator.program import Program


@dataclass(frozen=True)
class SpmdResult:
    """Per-chip schedules of one SPMD execution."""

    makespan: float
    per_chip_finish: tuple[float, ...]
    barrier_wait_s: tuple[float, ...]  # time each chip idled at barriers

    @property
    def num_chips(self) -> int:
        return len(self.per_chip_finish)

    def slowdown_vs(self, baseline: "SpmdResult") -> float:
        return self.makespan / baseline.makespan


def simulate_spmd(program: Program, speed_factors: Sequence[float]
                  ) -> SpmdResult:
    """Execute the DAG on every chip; ``ici`` ops synchronize all chips.

    ``speed_factors[i]`` scales chip *i*'s local op durations (1.0 =
    nominal; 2.0 = twice as slow).  Communication ops take their nominal
    duration but start only when every chip has satisfied the op's
    dependencies — the straggler effect.
    """
    program.validate()
    if not speed_factors:
        raise ValueError("need at least one chip")
    if any(s <= 0 for s in speed_factors):
        raise ValueError("speed factors must be positive")
    n_chips = len(speed_factors)
    n_ops = len(program.ops)

    # finish[chip][op]; per-chip per-resource availability.
    finish = [[0.0] * n_ops for _ in range(n_chips)]
    resource_free = [{"mxu": 0.0, "hbm": 0.0, "ici": 0.0}
                     for _ in range(n_chips)]
    barrier_wait = [0.0] * n_chips

    # Ops are indexed topologically (deps point backwards), so one pass
    # in id order with barrier joins is an exact SPMD schedule.
    for idx, op in enumerate(program.ops):
        if op.resource == "ici":
            # Barrier: every chip's dependencies must be done.
            ready_per_chip = [
                max((finish[c][d] for d in op.deps), default=0.0)
                for c in range(n_chips)]
            start_per_chip = [max(r, resource_free[c]["ici"])
                              for c, r in enumerate(ready_per_chip)]
            start = max(start_per_chip)
            for c in range(n_chips):
                barrier_wait[c] += start - start_per_chip[c]
                done = start + op.duration
                resource_free[c]["ici"] = done
                finish[c][idx] = done
        else:
            for c in range(n_chips):
                ready = max((finish[c][d] for d in op.deps), default=0.0)
                start = max(ready, resource_free[c][op.resource])
                done = start + op.duration * speed_factors[c]
                resource_free[c][op.resource] = done
                finish[c][idx] = done

    per_chip = tuple(max(chip_finish, default=0.0)
                     for chip_finish in finish)
    return SpmdResult(makespan=max(per_chip, default=0.0),
                      per_chip_finish=per_chip,
                      barrier_wait_s=tuple(barrier_wait))


def straggler_slowdown(program: Program, n_chips: int,
                       straggler_factor: float) -> float:
    """Slice slowdown when exactly one chip runs ``factor`` times slower."""
    if straggler_factor < 1:
        raise ValueError("straggler_factor must be >= 1")
    nominal = simulate_spmd(program, [1.0] * n_chips)
    factors = [1.0] * n_chips
    factors[0] = straggler_factor
    degraded = simulate_spmd(program, factors)
    return degraded.slowdown_vs(nominal)
