"""Build simulator op graphs for partitioned Transformer forward passes.

The builder lowers one forward pass (a prefill or a decode step) of a
:class:`~repro.partitioning.plan.LayoutPlan` into a per-chip op DAG:

* per layer, an **input projection** (fused W_in/W_gate/W_Q/W_K/W_V
  matmul + its weight stream), an **attention** stage (KV-cache load +
  score/value matmuls), an **output projection** (fused W_out/W_O), and a
  fixed per-layer overhead;
* the layer's collectives — taken from the *same* symbolic communication
  model that is verified against the executor — attached to those stages:
  entry collectives (norm all-reduce, activation/weight gathers) with the
  input projection, mid-layer collectives (hidden reduce-scatter /
  all-gather, attention reshardings) with the attention stage, and the
  trailing reduce-scatter with the output projection;
* a final norm/logits stage.

With ``overlap=True`` (Looped CollectiveEinsum, Section 3.5) a stage's
collectives run on the ``ici`` resource concurrently with its matmuls, so
the stage costs ``max``; with ``overlap=False`` they serialize.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.cost import _factor
from repro.hardware.chip import ChipSpec
from repro.hardware.topology import Torus3D
from repro.model.config import FfnKind, ModelConfig
from repro.partitioning.attention_costs import kv_bytes_per_chip
from repro.partitioning.plan import LayoutPlan
from repro.perf.comm_model import (
    AnalyticCollective,
    final_comm_events,
    layer_comm_events,
)
from repro.perf.efficiency import EfficiencyModel
from repro.simulator.program import Program


@dataclass(frozen=True)
class BuildSpec:
    """One forward pass to lower into an op graph."""

    config: ModelConfig
    plan: LayoutPlan
    torus: Torus3D
    chip: ChipSpec
    batch: int
    l_new: int
    context_before: int = 0
    weight_dtype_bytes: int = 2
    act_dtype_bytes: int = 2
    kv_dtype_bytes: int = 2
    overlap: bool = True
    efficiency: EfficiencyModel = EfficiencyModel()


def _event_seconds(ev: AnalyticCollective, spec: BuildSpec) -> float:
    width = (spec.weight_dtype_bytes if ev.kind == "weight"
             else spec.act_dtype_bytes)
    bw = (spec.chip.interconnect_bandwidth
          * spec.efficiency.network_efficiency)
    seconds = ev.payload_elements * width / bw
    if ev.op == "all_to_all":
        seconds /= 4.0
    elif ev.op == "split":
        return 0.0
    return seconds * _factor(spec.torus.group_size(ev.axes), exact=True)


def _bucket_events(events: list[AnalyticCollective]
                   ) -> tuple[list, list, list]:
    """Split a layer's collectives into (entry, middle, exit) stages.

    Entry = the leading norm all-reduce / activation gather / weight
    gathers; exit = the trailing reduce-scatter back into the residual;
    middle = everything between (hidden-dim pairs, attention reshardings).
    """
    entry: list[AnalyticCollective] = []
    i = 0
    while i < len(events) and events[i].op in ("all_reduce", "all_gather"):
        entry.append(events[i])
        i += 1
    exit_events: list[AnalyticCollective] = []
    j = len(events)
    if j > i and events[j - 1].op == "reduce_scatter":
        exit_events = [events[j - 1]]
        j -= 1
    return entry, events[i:j], exit_events


def build_forward_program(spec: BuildSpec) -> Program:
    """Lower one forward pass into a simulator op DAG."""
    cfg, eff, torus = spec.config, spec.efficiency, spec.torus
    n = torus.num_chips
    tokens = spec.batch * spec.l_new
    rows = tokens / torus.group_size(spec.plan.ffn.batch_axes)
    peak = spec.chip.peak_flops * eff.matmul_efficiency(rows)
    hbm = spec.chip.hbm_bandwidth * eff.hbm_efficiency

    gates = 2 if cfg.ffn is FfnKind.SWIGLU else 1
    in_width = gates * cfg.d_ff + (cfg.n_heads + 2 * cfg.n_kv_heads) \
        * cfg.d_head
    out_width = cfg.d_ff + cfg.n_heads * cfg.d_head
    in_flops = 2.0 * tokens * cfg.d_model * in_width / n
    out_flops = 2.0 * tokens * cfg.d_model * out_width / n
    in_weight_bytes = cfg.d_model * in_width * spec.weight_dtype_bytes / n
    out_weight_bytes = cfg.d_model * out_width * spec.weight_dtype_bytes / n

    avg_kv = spec.context_before + (spec.l_new + 1) / 2.0
    attn_flops = (4.0 * cfg.n_heads * cfg.d_head * avg_kv * tokens / n)
    attn_peak = spec.chip.peak_flops * eff.attention_flops_efficiency
    kv_after = spec.context_before + spec.l_new
    # kv_bytes_per_chip counts all layers; each layer streams its slice.
    kv_bytes = kv_bytes_per_chip(cfg, spec.plan.attention, n, spec.batch,
                                 kv_after,
                                 spec.kv_dtype_bytes) / cfg.n_layers

    layer_events = layer_comm_events(cfg, spec.plan, torus, spec.batch,
                                     spec.l_new)
    entry_ev, middle_ev, exit_ev = _bucket_events(layer_events)

    prog = Program()
    prev = prog.add("step-overhead", "mxu", eff.per_step_overhead,
                    tag="overhead")

    def stage(name, tag, deps, *, comm_events=(), matmul_s=0.0,
              weight_bytes=0.0, hbm_bytes=0.0) -> int:
        """One fused stage; returns a barrier id joining its parts."""
        parts = []
        comm_s = sum(_event_seconds(ev, spec) for ev in comm_events)
        comm_id = None
        if comm_s > 0:
            comm_id = prog.add(f"{name}/comm", "ici", comm_s, deps, tag)
            parts.append(comm_id)
        # Without overlap, compute/memory wait for the communication.
        compute_deps = ((comm_id,) if (comm_id is not None
                                       and not spec.overlap) else deps)
        if hbm_bytes > 0:
            parts.append(prog.add(f"{name}/hbm", "hbm", hbm_bytes / hbm,
                                  compute_deps, tag))
        if weight_bytes > 0:
            parts.append(prog.add(f"{name}/weights", "hbm",
                                  weight_bytes / hbm, compute_deps, tag))
        if matmul_s > 0:
            parts.append(prog.add(f"{name}/matmul", "mxu", matmul_s,
                                  compute_deps, tag))
        if not parts:
            return prog.barrier(f"{name}/empty", deps)
        return prog.barrier(f"{name}/done", parts)

    for layer in range(cfg.n_layers):
        tag = f"layer{layer}"
        in_proj = stage(f"{tag}/in_proj", tag, (prev,),
                        comm_events=entry_ev, matmul_s=in_flops / peak,
                        weight_bytes=in_weight_bytes)
        attn = stage(f"{tag}/attention", tag, (in_proj,),
                     comm_events=middle_ev,
                     matmul_s=attn_flops / attn_peak, hbm_bytes=kv_bytes)
        out_proj = stage(f"{tag}/out_proj", tag, (attn,),
                         comm_events=exit_ev, matmul_s=out_flops / peak,
                         weight_bytes=out_weight_bytes)
        prev = prog.add(f"{tag}/overhead", "mxu", eff.per_layer_overhead,
                        (out_proj,), tag)

    final_ev = final_comm_events(cfg, spec.plan, torus, spec.batch,
                                 spec.l_new)
    unembed_flops = 2.0 * tokens * cfg.d_model * cfg.vocab_size / n
    unembed_bytes = cfg.embedding_params * spec.weight_dtype_bytes / n
    stage("logits", "final", (prev,), comm_events=final_ev,
          matmul_s=unembed_flops / peak, weight_bytes=unembed_bytes)
    return prog


def build_generation_program(spec: BuildSpec, n_steps: int) -> Program:
    """Prefill (``spec``) followed by ``n_steps`` decode steps.

    The decode steps reuse the same plan with one token per sequence and a
    context that grows each step — a full Table 2-style end-to-end
    schedule in one DAG (useful for whole-request traces).
    """
    import dataclasses

    if n_steps < 0:
        raise ValueError("n_steps must be >= 0")
    prog = build_forward_program(spec)
    context = spec.context_before + spec.l_new
    for step in range(n_steps):
        step_spec = dataclasses.replace(spec, l_new=1,
                                        context_before=context)
        step_prog = build_forward_program(step_spec)
        offset = len(prog)
        last = offset - 1
        for op in step_prog.ops:
            deps = tuple(d + offset for d in op.deps) or (last,)
            prog.add(f"step{step}/{op.name}", op.resource, op.duration,
                     deps, tag=f"decode{step}")
        context += 1
    return prog
