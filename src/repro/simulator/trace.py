"""Chrome-trace export of simulated schedules.

Write the JSON to a file and open it in Perfetto / ``chrome://tracing`` to
see the per-resource timeline (MXU / HBM / interconnect lanes) of a
simulated forward pass.
"""

from __future__ import annotations

import json

from repro.simulator.engine import SimulationResult
from repro.simulator.program import RESOURCES

_MICROSECONDS = 1e6


def to_chrome_trace(result: SimulationResult,
                    process_name: str = "chip0") -> dict:
    """Convert a schedule into the Chrome trace-event JSON format."""
    events = [{
        "name": "process_name", "ph": "M", "pid": 0,
        "args": {"name": process_name},
    }]
    tids = {resource: i for i, resource in enumerate(RESOURCES)}
    for resource, tid in tids.items():
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": tid, "args": {"name": resource}})
    for record in result.records:
        if record.duration == 0:
            continue
        events.append({
            "name": record.name,
            "cat": record.tag or "op",
            "ph": "X",
            "pid": 0,
            "tid": tids[record.resource],
            "ts": record.start * _MICROSECONDS,
            "dur": record.duration * _MICROSECONDS,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(result: SimulationResult, path: str,
                       process_name: str = "chip0") -> None:
    with open(path, "w") as f:
        json.dump(to_chrome_trace(result, process_name), f)
