"""Chrome-trace export of simulated schedules.

This is the simulator-side client of the shared Perfetto builders in
:mod:`repro.observability.chrome_trace` — the same trace-event JSON now
also carries *executed* virtual-mesh programs (see
:func:`repro.observability.chrome_trace.spans_to_chrome_trace`).  Here,
each simulated record lands in the per-resource lane (MXU / HBM /
interconnect) of one simulated chip.  Write the JSON to a file and open
it in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

from repro.observability.chrome_trace import (
    build_trace,
    complete_event,
    process_metadata,
    thread_metadata,
    write_trace,
)
from repro.simulator.engine import SimulationResult
from repro.simulator.program import RESOURCES


def to_chrome_trace(result: SimulationResult,
                    process_name: str = "chip0") -> dict:
    """Convert a schedule into the Chrome trace-event JSON format.

    Zero-duration records (e.g. free reshards) are dropped — they would
    render as invisible slivers and inflate the event count.
    """
    events = [process_metadata(0, process_name)]
    tids = {resource: i for i, resource in enumerate(RESOURCES)}
    for resource, tid in tids.items():
        events.append(thread_metadata(0, tid, resource))
    for record in result.records:
        if record.duration == 0:
            continue
        events.append(complete_event(
            record.name, record.tag, 0, tids[record.resource],
            ts_s=record.start, dur_s=record.duration))
    return build_trace(events)


def write_chrome_trace(result: SimulationResult, path: str,
                       process_name: str = "chip0") -> None:
    write_trace(to_chrome_trace(result, process_name), path)
