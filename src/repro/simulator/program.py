"""Op graphs for the discrete-event simulator.

A :class:`Program` is a DAG of :class:`Op` nodes, each bound to one of
three per-chip resources:

* ``mxu`` — the matrix unit (matmul FLOPs, elementwise work, overheads);
* ``hbm`` — the memory system (weight streaming, KV-cache loads);
* ``ici`` — the inter-chip interconnect (collectives).

Because the resources are distinct, ops on different resources whose
dependencies allow it run *concurrently* — this is how the simulator
expresses the Looped CollectiveEinsum overlap of Section 3.5: a collective
and the matmul it feeds into are given the same dependencies, so the pair
costs ``max(comm, compute)`` instead of the sum.  Disabling overlap
serializes them (``comm + compute``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

RESOURCES = ("mxu", "hbm", "ici")


@dataclass
class Op:
    """One unit of work on one resource."""

    name: str
    resource: str
    duration: float
    deps: tuple[int, ...] = ()
    tag: str = ""  # free-form grouping label (e.g. "layer3/ffn")

    def __post_init__(self) -> None:
        if self.resource not in RESOURCES:
            raise ValueError(f"unknown resource {self.resource!r}; "
                             f"expected one of {RESOURCES}")
        if self.duration < 0:
            raise ValueError(f"negative duration for op {self.name!r}")


@dataclass
class Program:
    """An append-only op DAG.  ``add`` returns the new op's id."""

    ops: list[Op] = field(default_factory=list)

    def add(self, name: str, resource: str, duration: float,
            deps: Iterable[int] = (), tag: str = "") -> int:
        deps = tuple(deps)
        for d in deps:
            if not 0 <= d < len(self.ops):
                raise ValueError(f"op {name!r} depends on unknown op {d}")
        self.ops.append(Op(name, resource, duration, deps, tag))
        return len(self.ops) - 1

    def barrier(self, name: str, deps: Iterable[int]) -> int:
        """A zero-duration synchronization point on the mxu."""
        return self.add(name, "mxu", 0.0, deps)

    def __len__(self) -> int:
        return len(self.ops)

    def validate(self) -> None:
        """Check every dependency points backwards (the DAG is acyclic)."""
        for idx, op in enumerate(self.ops):
            if any(d >= idx for d in op.deps):
                raise ValueError(
                    f"op {idx} ({op.name!r}) has a forward dependency")
