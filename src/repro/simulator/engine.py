"""Event-driven execution of op graphs.

List scheduling with per-resource FIFO queues: an op becomes *ready* when
all dependencies finish; each resource executes its ready ops one at a
time in ready-time order.  The result is a per-op (start, finish)
timeline, the makespan, and per-resource busy times / utilization — the
quantities the Section 3.5 overlap ablation and the estimator-validation
tests consume.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.simulator.program import RESOURCES, Program


@dataclass(frozen=True)
class OpRecord:
    """The simulated schedule of one op."""

    op_id: int
    name: str
    resource: str
    tag: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class SimulationResult:
    records: list[OpRecord]
    makespan: float
    busy: dict[str, float] = field(default_factory=dict)

    def utilization(self, resource: str) -> float:
        if self.makespan == 0:
            return 0.0
        return self.busy.get(resource, 0.0) / self.makespan

    def critical_records(self) -> list[OpRecord]:
        """Ops that end exactly at another op's start or at the makespan —
        a cheap critical-path approximation for reports."""
        return [r for r in self.records
                if r.finish == self.makespan or r.duration > 0]

    def by_tag(self) -> dict[str, float]:
        """Total busy time per tag (e.g. per layer or per phase)."""
        totals: dict[str, float] = {}
        for r in self.records:
            totals[r.tag] = totals.get(r.tag, 0.0) + r.duration
        return totals


def simulate(program: Program) -> SimulationResult:
    """Run the DAG to completion and return the schedule."""
    program.validate()
    n = len(program.ops)
    remaining = [len(op.deps) for op in program.ops]
    dependents: list[list[int]] = [[] for _ in range(n)]
    for idx, op in enumerate(program.ops):
        for dep in op.deps:
            dependents[dep].append(idx)

    ready_at = [0.0] * n
    resource_free = {r: 0.0 for r in RESOURCES}
    busy = {r: 0.0 for r in RESOURCES}
    finish_times = [0.0] * n
    records: list[OpRecord] = [None] * n  # type: ignore[list-item]

    # Min-heap of (ready time, op id) for ops with all deps satisfied.
    heap: list[tuple[float, int]] = [(0.0, i) for i in range(n)
                                     if remaining[i] == 0]
    heapq.heapify(heap)
    completed = 0
    while heap:
        ready, idx = heapq.heappop(heap)
        op = program.ops[idx]
        start = max(ready, resource_free[op.resource])
        finish = start + op.duration
        resource_free[op.resource] = finish
        busy[op.resource] += op.duration
        finish_times[idx] = finish
        records[idx] = OpRecord(idx, op.name, op.resource, op.tag, start,
                                finish)
        completed += 1
        for dep_idx in dependents[idx]:
            remaining[dep_idx] -= 1
            ready_at[dep_idx] = max(ready_at[dep_idx], finish)
            if remaining[dep_idx] == 0:
                heapq.heappush(heap, (ready_at[dep_idx], dep_idx))

    if completed != n:
        raise RuntimeError(
            f"deadlock: only {completed}/{n} ops completed (cyclic deps?)")
    makespan = max(finish_times, default=0.0)
    return SimulationResult(records=records, makespan=makespan, busy=busy)
