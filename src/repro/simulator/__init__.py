"""Discrete-event simulator of per-chip execution (compute/HBM/ICI)."""

from repro.simulator.builder import BuildSpec, build_forward_program
from repro.simulator.engine import OpRecord, SimulationResult, simulate
from repro.simulator.program import Op, Program
from repro.simulator.trace import to_chrome_trace, write_chrome_trace

__all__ = [
    "BuildSpec",
    "Op",
    "OpRecord",
    "Program",
    "SimulationResult",
    "build_forward_program",
    "simulate",
    "to_chrome_trace",
    "write_chrome_trace",
]

from repro.simulator.builder import build_generation_program  # noqa: E402

__all__.append("build_generation_program")

from repro.simulator.multichip import (  # noqa: E402
    SpmdResult,
    simulate_spmd,
    straggler_slowdown,
)

__all__ += ["SpmdResult", "simulate_spmd", "straggler_slowdown"]
